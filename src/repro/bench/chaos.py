"""Chaos soak: sustained random component failures over a workload.

The paper argues resilience mechanism by mechanism; this experiment
composes them: a batch of jobs runs to completion while a Poisson
process keeps crashing randomly chosen components (learner pods,
learner containers, helpers, Guardians, API/LCM pods, occasionally a
whole node). The dependability claim under test: *no job is ever lost*
— every submission reaches COMPLETED, at the cost of makespan
inflation bounded by checkpoint intervals and restart times.
"""

from ..core import ComponentCrasher, DlaasError
from .platform_runner import bench_manifest, build_platform


def run_soak(mtbf, jobs=4, steps=300, horizon=20_000.0, seed=17):
    """Returns a summary row for one MTBF setting (None = fault-free)."""
    platform = build_platform("k80", gpus_per_node=4, seed=seed, gpu_nodes=3)
    client = platform.client("soak")
    crasher = ComponentCrasher(platform)
    rng = platform.kernel.rng("chaos-soak")
    crash_log = []

    def submit_all():
        ids = []
        for i in range(jobs):
            manifest = bench_manifest("resnet50", "tensorflow", 1, "k80", steps)
            manifest["name"] = f"soak-{i}"
            manifest["checkpoint_interval"] = 20.0
            ids.append((yield from client.submit(manifest)))
        return ids

    job_ids = platform.run_process(submit_all(), limit=10_000)

    stop_chaos = platform.kernel.event()
    if mtbf is not None:
        platform.kernel.spawn(
            _chaos_actor(platform, crasher, rng, job_ids, mtbf, stop_chaos,
                         crash_log),
            name="chaos-actor",
        )

    def drain():
        docs = []
        for job_id in job_ids:
            docs.append((yield from client.wait_for_status(job_id,
                                                           timeout=horizon)))
        return docs

    docs = platform.run_process(drain(), limit=horizon * 3)
    if not stop_chaos.triggered:
        stop_chaos.succeed()
    return {
        "mtbf s": mtbf if mtbf is not None else "off",
        "jobs": jobs,
        "completed": sum(1 for d in docs if d["status"] == "COMPLETED"),
        "crashes injected": len(crash_log),
        "makespan s": platform.kernel.now,
    }


def _chaos_actor(platform, crasher, rng, job_ids, mtbf, stop, crash_log):
    # Weighted menu of targets, matching what actually fails in a
    # datacenter: learners (GPU boxes) most often, platform pods less so.
    menu = (
        ("learner-pod", 4),
        ("learner-container", 3),
        ("helper", 2),
        ("guardian", 2),
        ("api", 1),
        ("lcm", 1),
        ("node", 1),
    )
    choices = [kind for kind, weight in menu for _ in range(weight)]
    while not stop.triggered:
        yield platform.kernel.sleep(rng.expovariate(1.0 / mtbf))
        if stop.triggered:
            return
        kind = rng.choice(choices)
        job_id = rng.choice(job_ids)
        try:
            if kind == "learner-pod":
                crasher.crash_learner(job_id)
            elif kind == "learner-container":
                crasher.crash_learner_container(job_id)
            elif kind == "helper":
                crasher.crash_helper(job_id)
            elif kind == "guardian":
                crasher.crash_guardian(job_id)
            elif kind == "api":
                crasher.crash_api()
            elif kind == "lcm":
                crasher.crash_lcm()
            elif kind == "node":
                crasher.crash_node_of(job_id)
                # Bring the machine back after a reboot-ish delay, or
                # capacity erodes to nothing over a long soak.
                yield platform.kernel.sleep(30.0)
                for name, kubelet in platform.k8s.kubelets.items():
                    if not kubelet.alive:
                        platform.k8s.restart_node(name)
            crash_log.append((platform.kernel.now, kind, job_id))
        except DlaasError:
            # Target not present right now (job finished, pod mid-restart):
            # the chaos monkey shrugs and moves on.
            continue
        except Exception:
            continue
