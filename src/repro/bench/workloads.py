"""Workload generation: synthetic job mixes with stochastic arrivals.

Cluster-level experiments need realistic demand, not one hand-written
manifest. A :class:`JobMix` describes the population (weighted job
classes spanning models, frameworks and GPU shapes, as a shared DL
platform sees); :class:`WorkloadGenerator` draws manifests from it
deterministically and can submit them as a Poisson arrival process.
"""

from dataclasses import dataclass, field


@dataclass(frozen=True)
class JobClass:
    """One stratum of the job population."""

    name: str
    weight: float
    model: str
    framework: str
    learners: int = 1
    gpus_per_learner: int = 1
    min_steps: int = 50
    max_steps: int = 400
    checkpoint_interval: float = 60.0
    priority: int = 0


# A plausible shared-cluster mix: mostly small single-GPU jobs, some
# multi-GPU, a few distributed, echoing the paper's 1-4 GPU evaluation
# range.
DEFAULT_MIX = (
    JobClass("small-resnet", 4.0, "resnet50", "tensorflow"),
    JobClass("small-inception", 3.0, "inceptionv3", "tensorflow"),
    JobClass("caffe-vgg", 2.0, "vgg16", "caffe", gpus_per_learner=2),
    JobClass("quad-gpu", 1.5, "resnet50", "tensorflow", gpus_per_learner=4),
    JobClass("distributed", 1.0, "resnet50", "horovod", learners=2),
)


@dataclass
class WorkloadGenerator:
    """Deterministic manifest factory over a job mix."""

    platform: object
    data_bucket: str
    results_bucket: str
    credentials: dict
    mix: tuple = DEFAULT_MIX
    gpu_type: str = "k80"
    rng_stream: str = "workload-generator"
    _counter: int = field(default=0, init=False)

    def _rng(self):
        return self.platform.kernel.rng(self.rng_stream)

    def _pick_class(self):
        rng = self._rng()
        total = sum(job_class.weight for job_class in self.mix)
        point = rng.random() * total
        for job_class in self.mix:
            point -= job_class.weight
            if point <= 0:
                return job_class
        return self.mix[-1]

    def next_manifest(self):
        """Draw one job manifest from the mix."""
        job_class = self._pick_class()
        rng = self._rng()
        self._counter += 1
        steps = rng.randint(job_class.min_steps, job_class.max_steps)
        return {
            "name": f"{job_class.name}-{self._counter}",
            "framework": job_class.framework,
            "model": job_class.model,
            "learners": job_class.learners,
            "gpus_per_learner": job_class.gpus_per_learner,
            "gpu_type": self.gpu_type,
            "target_steps": steps,
            "checkpoint_interval": job_class.checkpoint_interval,
            "priority": job_class.priority,
            "dataset_size_mb": 200,
            "data": {"bucket": self.data_bucket, "credentials": dict(self.credentials)},
            "results": {"bucket": self.results_bucket,
                        "credentials": dict(self.credentials)},
        }

    def manifests(self, count):
        return [self.next_manifest() for _ in range(count)]

    def poisson_arrivals(self, client, count, rate):
        """Process generator: submit ``count`` jobs at ``rate`` jobs/sec
        (exponential inter-arrivals); returns the submitted job ids."""
        if rate <= 0:
            raise ValueError("arrival rate must be positive")
        rng = self._rng()
        job_ids = []
        for _ in range(count):
            yield self.platform.kernel.sleep(rng.expovariate(rate))
            manifest = self.next_manifest()
            job_ids.append((yield from client.submit(manifest)))
        return job_ids
