"""Ablation experiments for the design choices DESIGN.md calls out.

* checkpoint-interval tradeoff (§III.g): lost work vs write overhead;
* atomic deployment (§III.d): retry+rollback vs give-up-on-first-crash;
* ETCD status durability (§III.f): durable store vs direct push;
* GPU scheduler: bin-packing vs spread under multi-GPU jobs.
"""

from ..cluster import (
    ContainerSpec,
    KubernetesCluster,
    Pod,
    PodSpec,
    RESTART_NEVER,
)
from ..frameworks import (
    BARE_METAL,
    CheckpointPolicy,
    CheckpointStore,
    TrainingRun,
)
from ..grpcnet import LatencyModel, Network
from ..nfs import NfsServer
from ..objectstore import ObjectStore
from ..raftkv import EtcdClient, EtcdCluster
from ..sim import Kernel
from .baremetal import build_config

CREDS = {"k": "bench"}


# ---------------------------------------------------------------------------
# Checkpoint-interval tradeoff (§III.g)
# ---------------------------------------------------------------------------


def checkpoint_tradeoff_rows(intervals=(0.0, 30.0, 120.0, 600.0),
                             mtbf=1800.0, steps=4000, seed=3,
                             restart_cost=15.0):
    """Makespan of a fixed training job under random crashes, by
    checkpoint interval. Interval 0 disables checkpointing (every crash
    restarts from step zero)."""
    rows = []
    for interval in intervals:
        result = _run_with_crashes(interval, mtbf, steps, seed, restart_cost)
        rows.append({
            "ckpt interval s": interval if interval else "off",
            "crashes": result["crashes"],
            "checkpoints": result["checkpoints"],
            "steps executed": result["steps_executed"],
            "wasted steps": result["steps_executed"] - steps,
            "makespan s": result["makespan"],
        })
    return rows


def _run_with_crashes(interval, mtbf, steps, seed, restart_cost):
    kernel = Kernel(seed=seed)
    store = ObjectStore(kernel)
    store.create_bucket("ckpt", CREDS)
    checkpoints = CheckpointStore(store, "ckpt", "job", CREDS)
    config = build_config("resnet50", "tensorflow", "k80", 1)
    rng = kernel.rng("crash-schedule")
    crashes = 0
    executed = 0
    written = 0

    while True:
        training = TrainingRun(
            kernel, config, BARE_METAL, target_steps=steps,
            checkpoint_policy=CheckpointPolicy(interval=interval),
            checkpoint_store=checkpoints if interval else None,
        )
        process = kernel.spawn(training.run())
        crash_in = rng.expovariate(1.0 / mtbf)
        timer = kernel.sleep(crash_in)

        def race(process=process, timer=timer):
            winner, _ = yield kernel.any_of([process, timer])
            timer.cancel()
            return winner is process

        finished = kernel.run_until_complete(kernel.spawn(race()))
        executed += training.steps_executed
        written += training.checkpoints_written
        if finished:
            return {
                "makespan": kernel.now,
                "crashes": crashes,
                "checkpoints": written,
                "steps_executed": executed,
            }
        process.kill("injected crash")
        kernel.run(until=kernel.now + restart_cost)
        crashes += 1


# ---------------------------------------------------------------------------
# Atomic deployment (§III.d)
# ---------------------------------------------------------------------------


def atomic_deploy_rows(crash_probability=0.35, trials=30, seed=5,
                       attempt_budgets=(1, 3)):
    """Probability a job ever deploys when each Guardian deployment
    attempt crashes with probability p, with and without retries.

    Analytic law: success = 1 - p^k for k attempts; the measured column
    comes from Monte Carlo draws with the simulation's RNG streams so
    the deterministic-retry machinery's accounting is exercised.
    """
    kernel = Kernel(seed=seed)
    rng = kernel.rng("atomic-deploy")
    rows = []
    for budget in attempt_budgets:
        successes = 0
        total_attempts = 0
        for _trial in range(trials):
            for attempt in range(1, budget + 1):
                total_attempts += 1
                if rng.random() >= crash_probability:
                    successes += 1
                    break
        rows.append({
            "attempt budget": budget,
            "crash prob": crash_probability,
            "deployed jobs": successes,
            "trials": trials,
            "success rate": successes / trials,
            "analytic": 1 - crash_probability ** budget,
        })
    return rows


# ---------------------------------------------------------------------------
# ETCD durability vs direct push (§III.f)
# ---------------------------------------------------------------------------


def etcd_vs_direct_rows(updates=40, downtime=(20.0, 50.0), seed=9):
    """Learner status updates stream while the consumer (Guardian) is
    down for a window. Durable ETCD retains every update for the
    restarted consumer; a direct push pipeline loses the window."""
    kernel = Kernel(seed=seed)
    network = Network(kernel, latency=LatencyModel(0.002, 0.001))
    cluster = EtcdCluster(kernel, network, size=3).start()
    client = EtcdClient(kernel, network, cluster)
    pushed_seen = []
    consumer_down = lambda t: downtime[0] <= t < downtime[1]

    def producer():
        yield from cluster.wait_for_leader()
        for i in range(updates):
            yield from client.put(f"status/{i}", {"seq": i})
            if not consumer_down(kernel.now):
                pushed_seen.append(i)  # direct push delivered live
            yield kernel.sleep(1.5)

    kernel.run_until_complete(kernel.spawn(producer()), limit=10_000)

    def read_back():
        kvs = yield from client.get_range("status/")
        return kvs

    durable = kernel.run_until_complete(kernel.spawn(read_back()), limit=1_000)
    return [
        {
            "pipeline": "etcd (durable, replicated)",
            "updates sent": updates,
            "visible after recovery": len(durable),
            "lost": updates - len(durable),
        },
        {
            "pipeline": "direct push (no store)",
            "updates sent": updates,
            "visible after recovery": len(pushed_seen),
            "lost": updates - len(pushed_seen),
        },
    ]


# ---------------------------------------------------------------------------
# Scheduler: bin-packing vs spread
# ---------------------------------------------------------------------------


def scheduler_rows(nodes=8, gpus_per_node=4, seed=11):
    """Fragmentation resistance: fill the cluster with 1-GPU pods, then
    try to place 4-GPU pods. Bin-packing leaves whole nodes free;
    spreading fragments every node."""
    rows = []
    small_pods = nodes * gpus_per_node // 2  # half the cluster, 1 GPU each
    for strategy in ("binpack", "spread"):
        kernel = Kernel(seed=seed)
        cluster = KubernetesCluster(kernel, NfsServer(kernel))
        cluster.scheduler.strategy = strategy
        cluster.registry.register("img", 10)
        for i in range(nodes):
            cluster.add_node(f"n{i}", gpus=gpus_per_node, gpu_type="k80")
        for i in range(small_pods):
            cluster.api.create(Pod(f"small-{i}", _gpu_pod_spec(1)))
        cluster.scheduler.schedule_once()
        for i in range(nodes):
            cluster.api.create(Pod(f"big-{i}", _gpu_pod_spec(gpus_per_node)))
        cluster.scheduler.schedule_once()
        placed_big = sum(
            1 for pod in cluster.api.list("Pod")
            if pod.metadata.name.startswith("big-") and pod.node_name is not None
        )
        rows.append({
            "strategy": strategy,
            "1-GPU pods": small_pods,
            f"{gpus_per_node}-GPU pods placed": placed_big,
            f"{gpus_per_node}-GPU pods stuck": nodes - placed_big,
        })
    return rows


def _gpu_pod_spec(gpus):
    return PodSpec(
        containers=[ContainerSpec("c", "img", gpus=gpus, cpu_millicores=100)],
        restart_policy=RESTART_NEVER,
        gpu_type="k80",
    )
