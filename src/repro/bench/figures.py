"""Experiment implementations for every table/figure in the paper.

Each ``fig*`` function regenerates the data behind one figure of the
evaluation (§IV), returning rows with both the measured value and the
paper's reported value so reports can show them side by side.
"""

from ..core import ComponentCrasher
from .baremetal import build_config, dgx1_config, measure_bare_metal, measure_dgx1
from .platform_runner import bench_manifest, build_platform, measure_dlaas

# ---------------------------------------------------------------------------
# Fig. 2 — DLaaS vs IBM Cloud bare metal, K80
# ---------------------------------------------------------------------------

FIG2_PAPER = [
    ("vgg16", "caffe", 1, 3.29),
    ("vgg16", "caffe", 2, 0.34),
    ("vgg16", "caffe", 3, 5.88),
    ("vgg16", "caffe", 4, 5.20),
    ("inceptionv3", "tensorflow", 1, 0.32),
    ("inceptionv3", "tensorflow", 2, 4.86),
    ("inceptionv3", "tensorflow", 3, 5.15),
    ("inceptionv3", "tensorflow", 4, 1.54),
]


def fig2_rows(steps=120, seed=0):
    """DLaaS (full platform, containerized, K80) vs bare metal."""
    rows = []
    for model, framework, gpus, paper_pct in FIG2_PAPER:
        config = build_config(model, framework, "k80", gpus)
        baseline = measure_bare_metal(config, steps=steps, seed=seed)
        platform = build_platform("k80", gpus_per_node=4, seed=seed)
        dlaas = measure_dlaas(
            platform, bench_manifest(model, framework, gpus, "k80", steps)
        )
        rows.append({
            "benchmark": model,
            "framework": framework,
            "gpus": gpus,
            "bare-metal img/s": baseline,
            "dlaas img/s": dlaas,
            "measured %": (baseline - dlaas) / baseline * 100.0,
            "paper %": paper_pct,
        })
    return rows


# ---------------------------------------------------------------------------
# Fig. 3 — DLaaS (PCIe P100) vs NVidia DGX-1
# ---------------------------------------------------------------------------

FIG3_PAPER = [
    ("inceptionv3", "tensorflow", 1, 3.30),
    ("resnet50", "tensorflow", 1, 7.07),
    ("vgg16", "tensorflow", 1, 7.84),
    ("inceptionv3", "tensorflow", 2, 10.06),
    ("resnet50", "tensorflow", 2, 10.53),
    ("vgg16", "tensorflow", 2, 13.69),
]


def fig3_rows(steps=120, seed=0):
    rows = []
    for model, framework, gpus, paper_pct in FIG3_PAPER:
        dgx = measure_dgx1(dgx1_config(model, framework, gpus), steps=steps,
                           seed=seed)
        platform = build_platform("p100-pcie", gpus_per_node=2, seed=seed)
        dlaas = measure_dlaas(
            platform, bench_manifest(model, framework, gpus, "p100-pcie", steps)
        )
        rows.append({
            "benchmark": model,
            "framework": framework,
            "gpus": gpus,
            "gpu type": "P100",
            "dgx-1 img/s": dgx,
            "dlaas img/s": dlaas,
            "measured %": (dgx - dlaas) / dgx * 100.0,
            "paper %": paper_pct,
        })
    return rows


# ---------------------------------------------------------------------------
# Fig. 4 — crash-recovery time per component
# ---------------------------------------------------------------------------

FIG4_PAPER = {
    "API": (3.0, 5.0),
    "LCM": (4.0, 6.0),
    "Guardian": (1.0, 2.0),
    "Helper": (3.0, 4.0),
    "Learner": (10.0, 20.0),
}


def fig4_rows(trials=5, seed=0):
    """Crash each component repeatedly (kubectl-style) and measure the
    crash -> serving-again interval on the simulated clock."""
    platform = build_platform("k80", gpus_per_node=4, seed=seed, gpu_nodes=3)
    client = platform.client("fig4")
    crasher = ComponentCrasher(platform)

    # A long-running job gives the guardian/helper/learner crash targets.
    manifest = bench_manifest("inceptionv3", "tensorflow", 1, "k80",
                              steps=1_000_000)
    manifest["checkpoint_interval"] = 30.0

    def submit():
        job_id = yield from client.submit(manifest)
        yield from client.wait_for_status(job_id, statuses={"PROCESSING"},
                                          timeout=5_000)
        return job_id

    job_id = platform.run_process(submit(), limit=20_000)

    experiments = [
        ("API", lambda: crasher.crash_api(), "api", {}),
        ("LCM", lambda: crasher.crash_lcm(), "lcm", {}),
        ("Guardian", lambda: crasher.crash_guardian(job_id), "guardian",
         {"job": job_id}),
        ("Helper", lambda: crasher.crash_helper(job_id), "controller",
         {"job": job_id}),
        ("Learner", lambda: crasher.crash_learner(job_id), "learner-0",
         {"job": job_id}),
    ]

    rows = []
    for label, crash, component, match in experiments:
        samples = []
        for _trial in range(trials):
            when, _target = crash()
            platform.run_for(45.0)  # let it recover and re-stabilize
            recovery = crasher.recovery_time(component, when, **match)
            if recovery is not None:
                samples.append(recovery)
        low, high = FIG4_PAPER[label]
        rows.append({
            "component": label,
            "trials": len(samples),
            "min s": min(samples),
            "mean s": sum(samples) / len(samples),
            "max s": max(samples),
            "paper": f"{low:.0f}-{high:.0f}s",
        })
    return rows


# ---------------------------------------------------------------------------
# §III.d — Guardian creation latency (< 3s claim)
# ---------------------------------------------------------------------------


def guardian_creation_rows(jobs=8, seed=0):
    platform = build_platform("k80", gpus_per_node=4, seed=seed, gpu_nodes=3)
    client = platform.client("gcl")

    def submit_all():
        ids = []
        for i in range(jobs):
            manifest = bench_manifest("resnet50", "tensorflow", 1, "k80", steps=30)
            manifest["name"] = f"gcl-{i}"
            ids.append((yield from client.submit(manifest)))
        for job_id in ids:
            yield from client.wait_for_status(job_id, timeout=50_000)
        return ids

    platform.run_process(submit_all(), limit=500_000)

    latencies = []
    created = {r.fields["job"]: r.time
               for r in platform.tracer.query(component="lcm",
                                              kind="guardian-created")}
    for record in platform.tracer.query(component="guardian",
                                        kind="component-ready"):
        job = record.fields["job"]
        if job in created:
            latencies.append(record.time - created.pop(job))
    return [{
        "jobs": jobs,
        "min s": min(latencies),
        "mean s": sum(latencies) / len(latencies),
        "max s": max(latencies),
        "paper": "< 3s",
    }]
