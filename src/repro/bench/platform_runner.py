"""End-to-end DLaaS throughput measurement through the full platform.

The DLaaS side of Figs. 2–3 runs the *whole* stack: submit through the
API, deploy through LCM/Guardian, stream data via load-data, train in a
learner container, and measure images/sec from the learner's own
start/exit trace — the same way the paper measures images processed per
second for training.
"""

from ..core import DlaasPlatform, PlatformConfig

CREDENTIALS = {"access_key": "bench", "secret": "bench"}


def build_platform(gpu_type, gpus_per_node, seed=0, gpu_nodes=2,
                   **config_overrides):
    platform = DlaasPlatform(
        seed=seed,
        config=PlatformConfig(
            gpu_nodes=gpu_nodes,
            gpus_per_node=gpus_per_node,
            gpu_type=gpu_type,
            management_nodes=2,
            **config_overrides,
        ),
    ).start()
    platform.seed_training_data("bench-data", CREDENTIALS, size_mb=200)
    platform.ensure_results_bucket("bench-results", CREDENTIALS)
    return platform


def bench_manifest(model, framework, gpus, gpu_type, steps, learners=1,
                   batch_per_gpu=0):
    return {
        "name": f"bench-{model}-{framework}-{gpus}g",
        "framework": framework,
        "model": model,
        "learners": learners,
        "gpus_per_learner": gpus,
        "gpu_type": gpu_type,
        "target_steps": steps,
        "batch_per_gpu": batch_per_gpu,
        # Benchmarks measure steady-state training; checkpointing off,
        # as in the paper's throughput comparisons.
        "checkpoint_interval": 0.0,
        "dataset_size_mb": 200,
        "data": {"bucket": "bench-data", "credentials": CREDENTIALS},
        "results": {"bucket": "bench-results", "credentials": CREDENTIALS},
    }


def measure_dlaas(platform, manifest):
    """Run one job through the platform; returns aggregate images/sec."""
    client = platform.client("bench")
    job_id, doc = platform.run_process(
        client.run_to_completion(manifest, timeout=100_000), limit=500_000
    )
    if doc["status"] != "COMPLETED":
        raise RuntimeError(f"benchmark job ended {doc['status']}")
    starts, ends = [], []
    for ordinal in range(manifest["learners"]):
        ready = platform.tracer.query(component=f"learner-{ordinal}",
                                      kind="component-ready", job=job_id)
        exits = platform.tracer.query(component=f"learner-{ordinal}",
                                      kind="learner-exit", job=job_id)
        starts.append(ready[0].time)
        ends.append(exits[-1].time)
    start, end = max(starts), max(ends)
    from ..frameworks import get_model

    model = get_model(manifest["model"])
    batch = manifest["batch_per_gpu"] or model.default_batch_per_gpu
    images = (manifest["target_steps"] * batch * manifest["gpus_per_learner"]
              * manifest["learners"])
    return images / (end - start)
