"""Benchmark harness: regenerate every table and figure of §IV.

``figures`` holds the paper's Figs. 2–4 and the §III.d guardian-latency
claim; ``ablations`` holds the design-choice studies DESIGN.md calls
out; ``reporting`` renders paper-vs-measured tables.
"""

from .ablations import (
    atomic_deploy_rows,
    checkpoint_tradeoff_rows,
    etcd_vs_direct_rows,
    scheduler_rows,
)
from .baremetal import (
    build_config,
    dgx1_config,
    measure_bare_metal,
    measure_dgx1,
    measure_direct,
)
from .figures import (
    FIG2_PAPER,
    FIG3_PAPER,
    FIG4_PAPER,
    fig2_rows,
    fig3_rows,
    fig4_rows,
    guardian_creation_rows,
)
from .platform_runner import bench_manifest, build_platform, measure_dlaas
from .scale_runner import partition_overrides, run_scale_scenario
from .reporting import render_table, shape_check
from .sharded_runner import (
    bench_cell_driver,
    build_sharded_bench,
    run_sharded_scenario,
)

__all__ = [
    "FIG2_PAPER",
    "FIG3_PAPER",
    "FIG4_PAPER",
    "atomic_deploy_rows",
    "bench_cell_driver",
    "bench_manifest",
    "build_config",
    "build_platform",
    "build_sharded_bench",
    "checkpoint_tradeoff_rows",
    "dgx1_config",
    "etcd_vs_direct_rows",
    "fig2_rows",
    "fig3_rows",
    "fig4_rows",
    "guardian_creation_rows",
    "measure_bare_metal",
    "measure_dgx1",
    "measure_direct",
    "measure_dlaas",
    "partition_overrides",
    "render_table",
    "run_scale_scenario",
    "run_sharded_scenario",
    "scheduler_rows",
    "shape_check",
]
