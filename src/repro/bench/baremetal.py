"""Baseline runners: bare metal and DGX-1.

The paper's Fig. 2 baseline is "directly executing the benchmarks (non
containerized) on bare metal machines manually"; Fig. 3's baseline is an
NVidia DGX-1. Both are modelled as a learner training loop run directly
on the simulation kernel — no Kubernetes, no containers, no helpers, no
platform taxes — with the appropriate platform profile and interconnect.
"""

from ..frameworks import (
    BARE_METAL,
    DGX1,
    ETH_1G,
    NVLINK,
    P100_SXM2,
    PCIE3,
    TrainingRun,
    WorkloadConfig,
    get_framework,
    get_gpu,
    get_model,
)
from ..sim import Kernel


def build_config(model_name, framework_name, gpu_name, gpus, intra_node=PCIE3,
                 batch_per_gpu=0):
    return WorkloadConfig(
        model=get_model(model_name),
        framework=get_framework(framework_name),
        gpu=get_gpu(gpu_name),
        gpus_per_learner=gpus,
        batch_per_gpu=batch_per_gpu,
        intra_node=intra_node if gpus > 1 else None,
        inter_node=ETH_1G,
    )


def dgx1_config(model_name, framework_name, gpus, batch_per_gpu=0):
    """A DGX-1 slot: SXM2 P100s on NVLink."""
    return WorkloadConfig(
        model=get_model(model_name),
        framework=get_framework(framework_name),
        gpu=P100_SXM2,
        gpus_per_learner=gpus,
        batch_per_gpu=batch_per_gpu,
        intra_node=NVLINK if gpus > 1 else None,
        inter_node=ETH_1G,
    )


def measure_direct(config, platform_profile, steps=120, seed=0):
    """Run a training loop directly on a fresh kernel; returns images/sec.

    No checkpointing (benchmark runs measure steady-state training
    throughput), startup time excluded — matching how images/sec is
    reported by the CNN benchmark suites the paper uses.
    """
    kernel = Kernel(seed=seed)
    marks = {}
    training = TrainingRun(
        kernel, config, platform_profile, target_steps=steps,
        on_started=lambda step, now: marks.setdefault("start", now),
    )
    kernel.run_until_complete(kernel.spawn(training.run()))
    duration = kernel.now - marks["start"]
    images = steps * config.batch * config.total_gpus
    return images / duration


def measure_bare_metal(config, steps=120, seed=0):
    return measure_direct(config, BARE_METAL, steps=steps, seed=seed)


def measure_dgx1(config, steps=120, seed=0):
    return measure_direct(config, DGX1, steps=steps, seed=seed)
