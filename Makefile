.PHONY: check test lint bench perf perf-sharded perf-scale perf-serving perf-gray perf-audit audit profile

check:
	scripts/check.sh

test:
	PYTHONPATH=src python -m pytest -q

lint:
	ruff check src tests benchmarks

bench:
	PYTHONPATH=src python -m pytest -q benchmarks/bench_fig4_recovery.py benchmarks/bench_detection_latency.py

perf:
	PYTHONPATH=src python benchmarks/bench_perf.py

perf-sharded:
	PYTHONPATH=src python benchmarks/bench_perf.py --sharded

perf-scale:
	PYTHONPATH=src python benchmarks/bench_scalability.py

perf-serving:
	PYTHONPATH=src python benchmarks/bench_serving.py

perf-gray:
	PYTHONPATH=src python benchmarks/bench_gray_failures.py

perf-audit:
	PYTHONPATH=src python benchmarks/bench_consistency.py

audit:
	PYTHONPATH=src python scripts/audit_report.py

profile:
	PYTHONPATH=src python scripts/profile.py
