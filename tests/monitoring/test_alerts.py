"""Unit tests for the SLO alerting engine (rules, lifecycle edges)."""

import pytest

from repro.core.events import EventRecorder
from repro.monitoring import (
    AlertEngine,
    AlertRule,
    FIRING,
    INACTIVE,
    Increase,
    Metric,
    PENDING,
    RESOLVED,
    default_rule_pack,
)
from repro.core import PlatformConfig
from repro.sim import Kernel, MetricsRegistry
from repro.sim.timeseries import TimeSeriesStore


@pytest.fixture
def kernel():
    return Kernel(seed=4)


@pytest.fixture
def store():
    return TimeSeriesStore()


def engine_with(kernel, store, rule, **kwargs):
    engine = AlertEngine(kernel, store, interval=1.0, **kwargs)
    engine.add_rule(rule)
    return engine


def up_rule(for_=2.0):
    return AlertRule("ApiDown", Metric("up", component="api") == 0, for_=for_)


class TestExpressions:
    def test_metric_instant_vector(self, store):
        store.add("up", {"component": "api"}, 1.0, 0.0)
        store.add("up", {"component": "lcm"}, 1.0, 1.0)
        satisfied = (Metric("up") == 0).eval(store, now=1.5, staleness=5.0)
        assert list(satisfied.values()) == [0.0]
        assert dict(list(satisfied)[0])["component"] == "api"

    def test_stale_sample_drops_out(self, store):
        store.add("up", {"component": "api"}, 1.0, 0.0)
        assert (Metric("up") == 0).eval(store, now=20.0, staleness=2.5) == {}

    def test_increase_over_window(self, store):
        for t, v in ((0.0, 0.0), (5.0, 2.0), (10.0, 7.0)):
            store.add("deploys_total", {}, t, v)
        result = Increase("deploys_total", 6.0).eval(store, 10.0, None)
        assert result == {(): 5.0}  # samples at t=5 and t=10

    def test_increase_needs_two_points(self, store):
        store.add("deploys_total", {}, 10.0, 7.0)
        assert Increase("deploys_total", 5.0).eval(store, 10.0, None) == {}

    def test_ratio_skips_zero_denominator(self, store):
        store.add("rollbacks", {}, 0.0, 0.0)
        store.add("rollbacks", {}, 10.0, 3.0)
        store.add("attempts", {}, 0.0, 0.0)
        store.add("attempts", {}, 10.0, 4.0)
        ratio = Increase("rollbacks", 60.0) / Increase("attempts", 60.0)
        assert ratio.eval(store, 10.0, None) == {(): 0.75}
        empty = TimeSeriesStore()
        empty.add("rollbacks", {}, 0.0, 1.0)
        empty.add("rollbacks", {}, 10.0, 2.0)
        assert ratio.eval(empty, 10.0, None) == {}

    def test_condition_requires_condition_type(self):
        with pytest.raises(TypeError):
            AlertRule("bad", Metric("up"))


class TestLifecycle:
    def test_pending_then_firing_then_resolved(self, kernel, store):
        engine = engine_with(kernel, store, up_rule(for_=2.0))
        labels = (("component", "api"),)
        store.add("up", {"component": "api"}, 0.0, 0.0)
        engine.evaluate_once()  # -> pending
        assert engine.active[("ApiDown", labels)]["state"] == PENDING
        assert engine.firing() == []

        kernel.run(until=2.0)
        store.add("up", {"component": "api"}, 2.0, 0.0)
        engine.evaluate_once()  # held for for_=2 -> firing
        assert engine.firing("ApiDown")

        kernel.run(until=4.0)
        store.add("up", {"component": "api"}, 4.0, 1.0)
        engine.evaluate_once()  # recovered -> resolved
        assert engine.firing() == []
        assert engine.transitions("ApiDown") == [
            (INACTIVE, PENDING), (PENDING, FIRING), (FIRING, RESOLVED)]

    def test_pending_that_recovers_never_fires(self, kernel, store):
        """Satellite: a dip shorter than ``for:`` must not page anyone."""
        recorder = EventRecorder(kernel)
        engine = engine_with(kernel, store, up_rule(for_=5.0), events=recorder)
        store.add("up", {"component": "api"}, 0.0, 0.0)
        engine.evaluate_once()  # pending at t=0
        kernel.run(until=1.0)
        store.add("up", {"component": "api"}, 1.0, 1.0)
        engine.evaluate_once()  # recovered before for_ elapsed
        assert engine.transitions("ApiDown") == [
            (INACTIVE, PENDING), (PENDING, INACTIVE)]
        assert engine.active == {}
        assert len(recorder) == 0  # no event for a dip that never fired

    def test_zero_for_fires_immediately(self, kernel, store):
        engine = engine_with(kernel, store, up_rule(for_=0.0))
        store.add("up", {"component": "api"}, 0.0, 0.0)
        engine.evaluate_once()
        assert engine.firing("ApiDown")

    def test_firing_emits_warning_and_resolution_events(self, kernel, store):
        recorder = EventRecorder(kernel)
        engine = engine_with(kernel, store, up_rule(for_=0.0), events=recorder)
        store.add("up", {"component": "api"}, 0.0, 0.0)
        engine.evaluate_once()
        warning = recorder.warnings(reason="ApiDown")
        assert len(warning) == 1
        assert warning[0].kind == "Component" and warning[0].name == "api"
        kernel.run(until=1.0)
        store.add("up", {"component": "api"}, 1.0, 1.0)
        engine.evaluate_once()
        assert recorder.events(reason="AlertResolved", name="api")

    def test_firing_gauge_and_transition_counter(self, kernel, store):
        registry = MetricsRegistry()
        engine = engine_with(kernel, store, up_rule(for_=0.0), metrics=registry)
        gauge = registry.gauge("alerts_firing", ("alert",))
        assert gauge.labels(alert="ApiDown").value == 0
        store.add("up", {"component": "api"}, 0.0, 0.0)
        engine.evaluate_once()
        assert gauge.labels(alert="ApiDown").value == 1
        kernel.run(until=1.0)
        store.add("up", {"component": "api"}, 1.0, 1.0)
        engine.evaluate_once()
        assert gauge.labels(alert="ApiDown").value == 0
        transitions = registry.counter("alert_transitions_total",
                                       ("alert", "state"))
        assert transitions.labels(alert="ApiDown", state="firing").value == 1

    def test_custom_rule_reason_registered_on_recorder(self, kernel, store):
        recorder = EventRecorder(kernel)
        rule = AlertRule("QueueTooDeep", Metric("depth") > 10, for_=0.0)
        engine_with(kernel, store, rule, events=recorder).evaluate_once()
        recorder.emit_event("Warning", "QueueTooDeep", "Component", "q")

    def test_staleness_resolves_vanished_series(self, kernel, store):
        engine = engine_with(kernel, store, up_rule(for_=0.0))
        engine.staleness = 2.0
        store.add("up", {"component": "api"}, 0.0, 0.0)
        engine.evaluate_once()
        assert engine.firing("ApiDown")
        kernel.run(until=10.0)  # no fresh samples: series went stale
        engine.evaluate_once()
        assert engine.firing() == []
        assert engine.transitions("ApiDown")[-1] == (FIRING, RESOLVED)


class TestRecordingRules:
    def test_recorded_series_feeds_alert_in_same_pass(self, kernel, store):
        engine = AlertEngine(kernel, store, interval=1.0)
        engine.add_recording_rule("error_ratio",
                                  Increase("errors", 60.0) / Increase("ops", 60.0))
        engine.add_rule(AlertRule("ErrorsHigh", Metric("error_ratio") > 0.5,
                                  for_=0.0))
        for t, errors, ops in ((0.0, 0.0, 0.0), (5.0, 6.0, 8.0)):
            store.add("errors", {}, t, errors)
            store.add("ops", {}, t, ops)
        kernel.run(until=5.0)
        engine.evaluate_once()
        assert store.get("error_ratio").values() == [0.75]
        assert engine.firing("ErrorsHigh")


class TestDefaultRulePack:
    def test_covers_failure_matrix(self):
        rules = {rule.name for rule in default_rule_pack(PlatformConfig())}
        for expected in ("ApiDown", "LcmDown", "GuardianDown", "HelperDown",
                         "LearnerDown", "EtcdDegraded", "MongoDegraded",
                         "NfsDown", "DeployFailureRatioHigh", "RpcLatencyHigh",
                         "WorkqueueBacklog"):
            assert expected in rules

    def test_reasons_all_registered(self, kernel):
        recorder = EventRecorder(kernel)
        store = TimeSeriesStore()
        engine = AlertEngine(kernel, store, events=recorder)
        for rule in default_rule_pack(PlatformConfig()):
            engine.add_rule(rule)  # register_reason would raise on junk
