"""Label-cardinality bounding: metric-child and series pruning when an
endpoint disappears, and counter-reset tolerance in the windowed
consumers that read the recreated children."""

import pytest

from repro.grpcnet import LatencyModel, Network, Server
from repro.monitoring import Increase, MetricsScraper
from repro.sim import Kernel, MetricsRegistry
from repro.sim.timeseries import TimeSeriesStore, counter_increase


@pytest.fixture
def kernel():
    return Kernel(seed=3)


@pytest.fixture
def store():
    return TimeSeriesStore()


class TestCounterIncrease:
    def test_monotone_counter(self):
        points = [(0.0, 0.0), (1.0, 3.0), (2.0, 7.0)]
        assert counter_increase(points) == 7.0

    def test_reset_counts_from_the_new_value(self):
        # 0 -> 5, reset, 2 -> 4: the true increase is 5 + 2 + 2.
        points = [(0.0, 0.0), (1.0, 5.0), (2.0, 2.0), (3.0, 4.0)]
        assert counter_increase(points) == 9.0

    def test_single_sample_is_zero(self):
        assert counter_increase([(0.0, 4.0)]) == 0.0

    def test_increase_expression_tolerates_reset(self, store):
        # An endpoint restart recreates its pruned child at zero; the
        # alert expression must not read that as a negative increase.
        for t, v in ((0.0, 0.0), (2.0, 6.0), (4.0, 1.0), (6.0, 2.0)):
            store.add("errors_total", {}, t, v)
        # 0 -> 6, reset, 1 -> 2: the true increase is 6 + 1 + 1.
        result = Increase("errors_total", 7.0).eval(store, 6.0, None)
        assert result == {(): 8.0}


class TestStoreRemove:
    def test_remove_drops_one_labelset(self, store):
        store.add("m", {"ep": "a"}, 0.0, 1.0)
        store.add("m", {"ep": "b"}, 0.0, 2.0)
        assert store.remove("m", {"ep": "a"})
        assert store.get("m", {"ep": "a"}) is None
        assert store.get("m", {"ep": "b"}).values() == [2.0]

    def test_remove_absent_is_false(self, store):
        assert not store.remove("m", {"ep": "a"})
        store.add("m", {"ep": "a"}, 0.0, 1.0)
        assert store.remove("m", {"ep": "a"})
        assert not store.remove("m", {"ep": "a"})

    def test_readd_after_remove_starts_fresh(self, store):
        store.add("m", {}, 0.0, 5.0)
        store.remove("m", {})
        store.add("m", {}, 1.0, 1.0)
        assert store.get("m").values() == [1.0]


class TestFamilyRemove:
    def test_remove_then_relabel_resets_to_zero(self):
        registry = MetricsRegistry()
        family = registry.counter("calls_total", ("ep",))
        family.labels(ep="a").inc(5)
        family.remove(ep="a")
        assert [lv for lv, _c in family.children()] == []
        assert family.labels(ep="a").value == 0.0

    def test_remove_absent_child_is_noop(self):
        registry = MetricsRegistry()
        registry.counter("calls_total", ("ep",)).remove(ep="ghost")

    def test_remove_validates_label_schema(self):
        registry = MetricsRegistry()
        family = registry.counter("calls_total", ("ep",))
        with pytest.raises(ValueError):
            family.remove(wrong="a")
        with pytest.raises(ValueError):
            family.remove()


class TestScraperPruning:
    def make(self, kernel, store, prune_after=5.0):
        registry = MetricsRegistry()
        scraper = MetricsScraper(kernel, store, registry=registry,
                                 prune_after=prune_after)
        return registry, scraper

    def test_vanished_child_is_pruned_after_deadline(self, kernel, store):
        registry, scraper = self.make(kernel, store)
        family = registry.counter("calls_total", ("ep",))
        family.labels(ep="a").inc()
        family.labels(ep="b").inc()
        scraper.scrape_once()
        family.remove(ep="a")
        kernel.run(until=1.0)
        scraper.scrape_once()  # marks stale
        assert store.get("calls_total", {"ep": "a"}) is not None
        kernel.run(until=10.0)
        scraper.scrape_once()  # past prune_after: reclaimed
        assert store.get("calls_total", {"ep": "a"}) is None
        assert store.get("calls_total", {"ep": "b"}) is not None
        assert scraper.series_pruned == 1
        assert scraper._stale_since == {}

    def test_source_returning_early_keeps_history(self, kernel, store):
        registry, scraper = self.make(kernel, store)
        family = registry.counter("calls_total", ("ep",))
        family.labels(ep="a").inc(3)
        scraper.scrape_once()
        family.remove(ep="a")
        kernel.run(until=1.0)
        scraper.scrape_once()
        family.labels(ep="a").inc()  # back before the deadline
        kernel.run(until=2.0)
        scraper.scrape_once()
        kernel.run(until=20.0)
        scraper.scrape_once()
        series = store.get("calls_total", {"ep": "a"})
        assert series is not None
        assert 3.0 in series.values()  # history survived
        assert scraper.series_pruned == 0

    def test_pruned_handle_recreates_live_series(self, kernel, store):
        # The emit plan caches a direct series pointer; after pruning,
        # a returning source must write into a *store-registered*
        # series, not the orphaned ring buffer.
        registry, scraper = self.make(kernel, store)
        family = registry.counter("calls_total", ("ep",))
        family.labels(ep="a").inc(5)
        scraper.scrape_once()
        family.remove(ep="a")
        kernel.run(until=1.0)
        scraper.scrape_once()
        kernel.run(until=10.0)
        scraper.scrape_once()
        assert store.get("calls_total", {"ep": "a"}) is None
        family.labels(ep="a").inc()  # endpoint restarted
        kernel.run(until=11.0)
        scraper.scrape_once()
        series = store.get("calls_total", {"ep": "a"})
        assert series is not None
        assert series.values() == [1.0]

    def test_up_series_of_gone_component_pruned(self, kernel, store):
        class FakeHealth:
            def __init__(self):
                self.components = ["api-0"]

            def up_samples(self):
                return [(c, 1.0) for c in self.components]

        health = FakeHealth()
        scraper = MetricsScraper(kernel, store, health=health,
                                 prune_after=5.0)
        scraper.scrape_once()
        assert store.get("up", {"component": "api-0"}) is not None
        health.components = []
        kernel.run(until=1.0)
        scraper.scrape_once()
        kernel.run(until=10.0)
        scraper.scrape_once()
        assert store.get("up", {"component": "api-0"}) is None
        # A re-registered component with the same name starts a fresh
        # series through the invalidated handle.
        health.components = ["api-0"]
        kernel.run(until=11.0)
        scraper.scrape_once()
        assert store.get("up", {"component": "api-0"}).values() == [1.0]

    def test_plan_gc_drops_dead_children(self, kernel, store):
        registry, scraper = self.make(kernel, store)
        family = registry.counter("calls_total", ("ep",))
        family.labels(ep="a").inc()
        family.labels(ep="b").inc()
        scraper.scrape_once()
        assert ("calls_total", ("a",)) in scraper._plans
        family.remove(ep="a")
        scraper._gc_plans()
        assert ("calls_total", ("a",)) not in scraper._plans
        assert ("calls_total", ("b",)) in scraper._plans


class TestNetworkEndpointPruning:
    def make_network(self, kernel):
        registry = MetricsRegistry()
        network = Network(kernel, latency=LatencyModel(base=0.001,
                                                       jitter=0.0),
                          metrics=registry)
        return registry, network

    def call_echo(self, kernel, network, address="svc"):
        def caller():
            return (yield network.call(address, "echo", "hi"))

        return kernel.run_until_complete(kernel.spawn(caller()))

    def test_unregister_prunes_endpoint_children(self, kernel):
        registry, network = self.make_network(kernel)
        server = Server(kernel, network, "svc")
        server.add_method("echo", lambda request: {"echo": request})
        server.start()
        self.call_echo(kernel, network)
        requests = registry.get("rpc_endpoint_requests_total")
        latency = registry.get("rpc_endpoint_latency_seconds_total")
        handled = registry.get("rpc_server_handled_total")
        assert any(lv[0] == "svc" for lv, _c in requests.children())
        assert any(lv[0] == "svc" for lv, _c in latency.children())
        assert any(lv[0] == "svc" for lv, _c in handled.children())

        network.unregister("svc")
        for family in (requests, latency, handled):
            assert not any(lv[0] == "svc" for lv, _c in family.children())
        # Per-method client families are endpoint-free and survive.
        assert registry.get("rpc_client_calls_total").children()

    def test_reregistered_endpoint_counts_from_zero(self, kernel):
        registry, network = self.make_network(kernel)
        server = Server(kernel, network, "svc")
        server.add_method("echo", lambda request: {"echo": request})
        server.start()
        self.call_echo(kernel, network)
        self.call_echo(kernel, network)
        network.unregister("svc")

        replacement = Server(kernel, network, "svc")
        replacement.add_method("echo", lambda request: {"echo": request})
        replacement.start()
        self.call_echo(kernel, network)
        handled = registry.get("rpc_server_handled_total")
        assert handled.labels(endpoint="svc").value == 1.0  # reset, not 3

    def test_unregister_without_metrics_is_safe(self, kernel):
        network = Network(kernel, latency=LatencyModel(base=0.001,
                                                       jitter=0.0))
        server = Server(kernel, network, "svc")
        server.add_method("echo", lambda request: {"echo": request})
        server.start()
        self.call_echo(kernel, network)
        network.unregister("svc")
        assert network.lookup("svc") is None
