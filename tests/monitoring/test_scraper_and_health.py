"""Unit tests for the scrape pipeline and health registry."""

import pytest

from repro.monitoring import HealthRegistry, MetricsScraper
from repro.sim import Kernel, MetricsRegistry
from repro.sim.timeseries import TimeSeriesStore


@pytest.fixture
def kernel():
    return Kernel(seed=2)


@pytest.fixture
def store():
    return TimeSeriesStore()


class TestScraper:
    def test_counters_and_gauges_sampled(self, kernel, store):
        registry = MetricsRegistry()
        registry.counter("requests_total").inc(3)
        registry.gauge("depth", ("name",)).labels(name="q").set(7)
        scraper = MetricsScraper(kernel, store, registry=registry)
        scraper.scrape_once()
        assert store.get("requests_total").values() == [3.0]
        assert store.get("depth", {"name": "q"}).values() == [7.0]

    def test_histogram_count_sum_quantiles(self, kernel, store):
        registry = MetricsRegistry()
        hist = registry.histogram("rpc_seconds")
        for value in (0.1, 0.2, 0.3):
            hist.observe(value)
        MetricsScraper(kernel, store, registry=registry).scrape_once()
        assert store.get("rpc_seconds_count").values() == [3.0]
        assert store.get("rpc_seconds_sum").values() == [pytest.approx(0.6)]
        p99 = store.get("rpc_seconds", {"quantile": "p99"})
        assert p99 is not None and 0.25 <= p99.values()[0] <= 0.5

    def test_empty_histogram_yields_no_quantile_series(self, kernel, store):
        registry = MetricsRegistry()
        registry.histogram("rpc_seconds").labels()
        MetricsScraper(kernel, store, registry=registry).scrape_once()
        assert store.get("rpc_seconds_count").values() == [0.0]
        assert store.get("rpc_seconds", {"quantile": "p99"}) is None

    def test_vanished_series_marked_stale(self, kernel, store):
        registry = MetricsRegistry()
        health = HealthRegistry()
        state = {"present": True}

        def check():
            if not state["present"]:
                return None
            return {"live": True, "ready": True}

        health.register("api", check)
        scraper = MetricsScraper(kernel, store, registry=registry, health=health)
        scraper.scrape_once()
        assert store.get("up", {"component": "api"}).latest_value() == 1.0
        state["present"] = False
        kernel.run(until=1.0)
        scraper.scrape_once()
        assert store.get("up", {"component": "api"}).latest_value() is None

    def test_periodic_loop_on_kernel(self, kernel, store):
        registry = MetricsRegistry()
        registry.counter("ticks").inc()
        scraper = MetricsScraper(kernel, store, interval=0.5, registry=registry)
        scraper.start()
        kernel.run(until=2.2)
        scraper.stop()
        assert scraper.scrape_count == 5  # t = 0, .5, 1, 1.5, 2
        assert registry.counter("monitoring_scrapes_total").value == 5

    def test_rejects_bad_interval(self, kernel, store):
        with pytest.raises(ValueError):
            MetricsScraper(kernel, store, interval=0)


class TestHealthRegistry:
    def test_snapshot_aggregates(self):
        registry = HealthRegistry()
        registry.register("good", lambda: {"live": True, "ready": True})
        registry.register("degraded",
                          lambda: {"live": True, "ready": False, "detail": "1/2"})
        snap = registry.snapshot()
        assert snap["status"] == "degraded"
        assert snap["components"]["good"]["status"] == "ok"
        assert snap["components"]["degraded"]["status"] == "degraded"
        assert snap["components"]["degraded"]["detail"] == "1/2"

    def test_non_core_probe_does_not_gate_aggregate(self):
        registry = HealthRegistry()
        registry.register("core", lambda: {"live": True, "ready": True})
        registry.register("job-group", lambda: {"live": False, "ready": False},
                          core=False)
        assert registry.snapshot()["status"] == "ok"

    def test_unknown_probe_reports_no_up_sample(self):
        registry = HealthRegistry()
        registry.register("late", lambda: None)
        assert registry.snapshot()["components"]["late"] == {"status": "unknown"}
        assert registry.up_samples() == []

    def test_up_iff_live_and_ready(self):
        registry = HealthRegistry()
        registry.register("full", lambda: {"live": True, "ready": True})
        registry.register("partial", lambda: {"live": True, "ready": False})
        assert dict(registry.up_samples()) == {"full": 1.0, "partial": 0.0}

    def test_latch_suppresses_boot_then_reports(self):
        state = {"ready": False}
        registry = HealthRegistry()
        registry.register("api",
                          lambda: {"live": True, "ready": state["ready"]},
                          latch=True)
        # Booting: no data, no false outage.
        assert registry.up_samples() == []
        state["ready"] = True
        assert registry.up_samples() == [("api", 1.0)]
        # After first readiness, a dip IS an outage.
        state["ready"] = False
        assert registry.up_samples() == [("api", 0.0)]

    def test_duplicate_name_rejected(self):
        registry = HealthRegistry()
        registry.register("x", lambda: None)
        with pytest.raises(ValueError):
            registry.register("x", lambda: None)
