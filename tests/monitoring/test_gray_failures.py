"""End-to-end gray-failure matrix: every injectable gray fault kind
must be caught by the differential pipeline (per-endpoint counters ->
``gray_divergence`` recording rule -> ``GrayFailure*`` alert -> Warning
event) while the target's health probe stays up the whole time — the
regime the crash-oriented fault matrix in
``tests/integration/test_monitoring_e2e.py`` cannot see.
"""

from repro.core import GrayFailureInjector
from repro.docstore import MongoClient
from repro.raftkv import EtcdClient

from ..integration.conftest import (
    make_platform,
    manifest,
    submit_and_wait_running,
    wait_terminal,
)

# Tight monitoring cadence plus a short divergence window / alert hold
# so each scenario detects, fires and resolves within a few simulated
# seconds of the injection.
GRAY = dict(scrape_interval=0.05, alert_eval_interval=0.05,
            event_flush_interval=0.5, gray_window=2.0, gray_alert_for=0.4)

FAULT_DURATION = 6.0


def assert_gray_detected(platform, target, role, rule, kind, inject_time):
    """The gray-failure acceptance check for one injected fault: the
    target's ``up`` never dips while the fault is live, the matching
    GrayFailure* alert walks pending -> firing -> resolved after the
    fault clears, and the injection is visible in the counter metric
    and precedes the detection in the event log."""
    store = platform.monitoring.store
    series = store.get("up", {"component": role})
    assert series is not None, f"no up series for {role}"
    window = series.window(inject_time, inject_time + FAULT_DURATION)
    assert window, f"no up samples for {role} during the fault"
    assert all(v == 1.0 for _, v in window), \
        f"up{{component={role}}} dipped during a gray fault: {window}"

    transitions = platform.monitoring.engine.transitions(rule)
    for hop in (("inactive", "pending"), ("pending", "firing"),
                ("firing", "resolved")):
        assert hop in transitions, (rule, hop, transitions)

    warnings = platform.events.warnings(reason=rule)
    assert warnings and warnings[0].kind == "Component"
    assert warnings[0].name == target
    assert platform.events.events(reason="AlertResolved", name=target)

    # The injection itself was recorded: counter series scraped, and
    # the FaultInjected event strictly precedes the detection.
    assert store.get("fault_injected_total",
                     {"target": target, "kind": kind}) is not None
    injected = [e for e in platform.events.warnings(reason="FaultInjected")
                if e.name == target]
    assert injected, f"no FaultInjected event for {target}"
    assert min(e.first_time for e in injected) <= warnings[0].first_time


def start_job(platform, steps=3000):
    client = platform.client("team-a")
    job_id = submit_and_wait_running(platform, client,
                                     manifest(target_steps=steps))
    return client, job_id


def drive_status_polls(platform, client, job_id, period=0.05):
    """Steady API read traffic: the balancer round-robins the polls
    across replicas, giving every endpoint a peer-comparable series."""

    def poll():
        while True:
            yield from client.status(job_id)
            yield platform.kernel.sleep(period)

    platform.kernel.spawn(poll(), name="gray-status-poller")


def drive_mongo_writes(platform, period=0.05):
    """Steady write traffic so each secondary sees a dense stream of
    ``replicate`` calls to diverge on."""
    mongo = MongoClient(platform.kernel, platform.network, platform.mongo,
                        caller="gray-write-driver")

    def writes():
        n = 0
        while True:
            n += 1
            yield from mongo.update_one("gray_probe", {"_id": "probe"},
                                        {"$set": {"n": n}}, upsert=True)
            yield platform.kernel.sleep(period)

    platform.kernel.spawn(writes(), name="gray-mongo-writer")


def drive_etcd_puts(platform, period=0.05):
    """Steady etcd writes so entry-carrying ``append_entries`` (which a
    disk stall delays) dominate the followers' latency series instead
    of the fast empty heartbeats."""
    etcd = EtcdClient(platform.kernel, platform.network, platform.etcd,
                      client_id="gray-etcd-writer")

    def puts():
        n = 0
        while True:
            n += 1
            yield from etcd.put("/gray/probe", str(n))
            yield platform.kernel.sleep(period)

    platform.kernel.spawn(puts(), name="gray-etcd-writer")


class TestGrayFaultMatrix:
    """One scenario per injectable gray fault kind."""

    def test_slow_api_replica_detected(self):
        platform = make_platform(**GRAY)
        client, job_id = start_job(platform)
        drive_status_polls(platform, client, job_id)
        platform.run_for(3.0)  # healthy peer baseline

        injector = GrayFailureInjector(platform)
        target = injector.api_endpoints()[0]
        inject_time = platform.kernel.now
        injector.slow_endpoint(target, extra_latency=0.05,
                               duration=FAULT_DURATION)
        platform.run_for(13.0)
        assert_gray_detected(platform, target, "api", "GrayFailureSlow",
                             "slow", inject_time)

    def test_oneway_partition_detected(self):
        platform = make_platform(**GRAY)
        drive_mongo_writes(platform)
        platform.run_for(3.0)

        injector = GrayFailureInjector(platform)
        primary = platform.mongo.primary_id()
        victim = injector.mongo_secondaries()[0]
        inject_time = platform.kernel.now
        injector.oneway_partition(primary, victim, duration=FAULT_DURATION)
        platform.run_for(13.0)
        # Replication into the victim fails while everything else —
        # including the victim's own health — keeps working.
        assert_gray_detected(platform, victim, "mongo",
                             "GrayFailurePartition", "partition", inject_time)

    def test_lossy_link_detected(self):
        platform = make_platform(**GRAY)
        drive_mongo_writes(platform)
        platform.run_for(3.0)

        injector = GrayFailureInjector(platform)
        victim = injector.mongo_secondaries()[0]
        inject_time = platform.kernel.now
        injector.lossy_endpoint(victim, loss=0.5, duration=FAULT_DURATION)
        platform.run_for(13.0)
        assert_gray_detected(platform, victim, "mongo",
                             "GrayFailurePartition", "loss", inject_time)

    def test_duplicating_link_detected(self):
        platform = make_platform(**GRAY)
        platform.run_for(3.0)  # heartbeat traffic is the baseline

        injector = GrayFailureInjector(platform)
        victim = injector.etcd_followers()[0]
        inject_time = platform.kernel.now
        injector.lossy_endpoint(victim, duplicate=0.9,
                                duration=FAULT_DURATION)
        platform.run_for(13.0)
        # The server handles ~1.9x the requests its callers sent — the
        # flow anomaly fires the link signal without any peer baseline.
        assert_gray_detected(platform, victim, "etcd",
                             "GrayFailurePartition", "duplicate", inject_time)

    def test_mongo_disk_stall_detected(self):
        platform = make_platform(**GRAY)
        drive_mongo_writes(platform)
        platform.run_for(3.0)

        injector = GrayFailureInjector(platform)
        victim = injector.mongo_secondaries()[0]
        inject_time = platform.kernel.now
        # 0.15 s stays under the 0.25 s replicate deadline: writes
        # succeed, slowly — a gray fault, not an outage.
        injector.disk_stall_mongo(victim, delay=0.15,
                                  duration=FAULT_DURATION)
        platform.run_for(13.0)
        assert_gray_detected(platform, victim, "mongo",
                             "GrayFailureDiskStall", "disk-stall",
                             inject_time)

    def test_etcd_disk_stall_detected(self):
        platform = make_platform(**GRAY)
        drive_etcd_puts(platform)
        platform.run_for(3.0)

        injector = GrayFailureInjector(platform)
        victim = injector.etcd_followers()[0]
        inject_time = platform.kernel.now
        # 0.04 s stays under the 0.06 s Raft rpc timeout, and empty
        # heartbeats skip the stall, so no election is triggered.
        injector.disk_stall_etcd(victim, delay=0.04,
                                 duration=FAULT_DURATION)
        platform.run_for(13.0)
        assert_gray_detected(platform, victim, "etcd",
                             "GrayFailureDiskStall", "disk-stall",
                             inject_time)


class TestDetectorDoesNotPerturb:
    """The differential detector is a pure consumer of scraped series:
    with detection enabled and no gray fault injected, the simulated
    job timeline is bit-identical to a run with it disabled."""

    @staticmethod
    def _timeline(gray_detection):
        platform = make_platform(gray_detection=gray_detection)
        client = platform.client("team-a")
        job_id = submit_and_wait_running(platform, client,
                                         manifest(target_steps=120))
        doc = wait_terminal(platform, client, job_id)
        return (doc["status"], doc["status_history"], doc["completed_at"],
                platform.kernel.now)

    def test_job_timeline_bit_identical(self):
        enabled = self._timeline(gray_detection=True)
        disabled = self._timeline(gray_detection=False)
        assert enabled == disabled
        assert enabled[0] == "COMPLETED"
