"""Unit tests for the differential (peer-divergence) detector."""

import pytest

from repro.monitoring import DifferentialDetector, robust_score, role_of
from repro.sim.timeseries import TimeSeriesStore


def series_value(out, endpoint, signal):
    for labels, value in out.items():
        d = dict(labels)
        if d["component"] == endpoint and d["signal"] == signal:
            return value
    return None


def feed(store, endpoint, method, calls, mean_latency, errors=0, handled=None,
         start=0.0, end=10.0):
    """Two cumulative counter samples bracketing the window: ``calls``
    requests at ``mean_latency`` each, ``errors`` of them failing."""
    store.add("rpc_endpoint_requests_total",
              {"endpoint": endpoint, "method": method, "code": "ok"},
              start, 0.0)
    store.add("rpc_endpoint_requests_total",
              {"endpoint": endpoint, "method": method, "code": "ok"},
              end, float(calls - errors))
    if errors:
        store.add("rpc_endpoint_requests_total",
                  {"endpoint": endpoint, "method": method,
                   "code": "Unavailable"}, start, 0.0)
        store.add("rpc_endpoint_requests_total",
                  {"endpoint": endpoint, "method": method,
                   "code": "Unavailable"}, end, float(errors))
    store.add("rpc_endpoint_latency_seconds_total",
              {"endpoint": endpoint, "method": method}, start, 0.0)
    store.add("rpc_endpoint_latency_seconds_total",
              {"endpoint": endpoint, "method": method}, end,
              calls * mean_latency)
    if handled is not None:
        store.add("rpc_server_handled_total", {"endpoint": endpoint},
                  start, 0.0)
        store.add("rpc_server_handled_total", {"endpoint": endpoint},
                  end, float(handled))


class TestHelpers:
    def test_role_of_service_and_member_addresses(self):
        assert role_of("api:dlaas-api-abc123") == "api"
        assert role_of("lcm:dlaas-lcm-x") == "lcm"
        assert role_of("mongo-0") == "mongo"
        assert role_of("etcd-2") == "etcd"

    def test_robust_score_clamps_healthy_side(self):
        # The endpoint *below* its peers never scores.
        assert robust_score(0.001, [0.05, 0.06], abs_floor=0.002) == 0.0

    def test_robust_score_floors_prevent_blowup(self):
        # Two identical peers: MAD is 0, the absolute floor divides.
        assert robust_score(0.022, [0.002, 0.002], abs_floor=0.002) == \
            pytest.approx(10.0)
        # Relative floor demands a multiple of the median.
        score = robust_score(0.0021, [0.002, 0.002], abs_floor=1e-9,
                             rel_floor=0.5)
        assert score == pytest.approx(0.1)


class TestDifferentialDetector:
    def detector(self, **kwargs):
        kwargs.setdefault("window", 10.0)
        kwargs.setdefault("min_count", 4)
        return DifferentialDetector(**kwargs)

    def test_healthy_peers_score_zero(self):
        store = TimeSeriesStore()
        for ep in ("api:a", "api:b", "api:c"):
            feed(store, ep, "status", calls=100, mean_latency=0.003)
        out = self.detector().eval(store, 10.0, None)
        for ep in ("api:a", "api:b", "api:c"):
            assert series_value(out, ep, "latency") == 0.0

    def test_slow_endpoint_diverges_on_latency(self):
        store = TimeSeriesStore()
        feed(store, "api:a", "status", calls=100, mean_latency=0.003)
        feed(store, "api:b", "status", calls=100, mean_latency=0.050)
        feed(store, "api:c", "status", calls=100, mean_latency=0.003)
        out = self.detector().eval(store, 10.0, None)
        assert series_value(out, "api:b", "latency") > 3.0
        assert series_value(out, "api:a", "latency") == 0.0
        assert series_value(out, "api:c", "latency") == 0.0

    def test_write_methods_score_as_write_latency(self):
        store = TimeSeriesStore()
        feed(store, "mongo-1", "replicate", calls=50, mean_latency=0.15)
        feed(store, "mongo-2", "replicate", calls=50, mean_latency=0.002)
        out = self.detector().eval(store, 10.0, None)
        assert series_value(out, "mongo-1", "write_latency") > 3.0
        assert series_value(out, "mongo-1", "latency") is None

    def test_error_rate_divergence_scores_link(self):
        store = TimeSeriesStore()
        feed(store, "mongo-1", "replicate", calls=50, mean_latency=0.002,
             errors=25)
        feed(store, "mongo-2", "replicate", calls=50, mean_latency=0.002)
        out = self.detector().eval(store, 10.0, None)
        assert series_value(out, "mongo-1", "link") > 3.0
        assert series_value(out, "mongo-2", "link") == 0.0

    def test_flow_anomaly_scores_link_without_peers(self):
        store = TimeSeriesStore()
        # 100 requests sent, 160 handled: the fabric is duplicating.
        feed(store, "etcd-1", "append_entries", calls=100,
             mean_latency=0.002, handled=160)
        out = self.detector().eval(store, 10.0, None)
        assert series_value(out, "etcd-1", "link") > 3.0

    def test_single_member_group_is_skipped(self):
        store = TimeSeriesStore()
        feed(store, "api:solo", "status", calls=100, mean_latency=0.5)
        out = self.detector().eval(store, 10.0, None)
        assert series_value(out, "api:solo", "latency") is None

    def test_low_traffic_endpoints_are_skipped(self):
        store = TimeSeriesStore()
        feed(store, "api:a", "status", calls=100, mean_latency=0.003)
        feed(store, "api:b", "status", calls=2, mean_latency=0.9)
        out = self.detector().eval(store, 10.0, None)
        assert series_value(out, "api:b", "latency") is None

    def test_labels_carry_role(self):
        store = TimeSeriesStore()
        feed(store, "mongo-1", "replicate", calls=50, mean_latency=0.15)
        feed(store, "mongo-2", "replicate", calls=50, mean_latency=0.002)
        out = self.detector().eval(store, 10.0, None)
        labels = next(dict(k) for k in out
                      if dict(k)["component"] == "mongo-1")
        assert labels["role"] == "mongo"

    def test_validates_parameters(self):
        with pytest.raises(ValueError):
            DifferentialDetector(window=0)
        with pytest.raises(ValueError):
            DifferentialDetector(min_count=0)
