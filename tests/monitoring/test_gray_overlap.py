"""Overlapping gray-fault injections against the same target must
compose while both are live and unwind to a pristine state regardless
of revert order — each revert removes exactly its own layer."""

import pytest

from repro.core import GrayFailureInjector
from repro.grpcnet import LatencyModel, Network
from repro.sim import Kernel

from ..integration.conftest import make_platform


@pytest.fixture
def kernel():
    return Kernel(seed=11)


@pytest.fixture
def network(kernel):
    return Network(kernel, latency=LatencyModel(base=0.001, jitter=0.0))


def pristine(network):
    return (not network._impaired and not network._impairment_layers
            and not network._oneway)


class TestImpairmentLayers:
    def test_latency_layers_add(self, network):
        l1 = network.degrade("svc", extra_latency=0.1)
        l2 = network.degrade("svc", extra_latency=0.25)
        assert network.impairment("svc").extra_latency == pytest.approx(0.35)
        network.restore("svc", l1)
        assert network.impairment("svc").extra_latency == pytest.approx(0.25)
        network.restore("svc", l2)
        assert pristine(network)

    def test_loss_layers_compose_as_independent_events(self, network):
        l1 = network.degrade("svc", loss=0.5)
        l2 = network.degrade("svc", loss=0.5)
        assert network.impairment("svc").loss == pytest.approx(0.75)
        network.restore("svc", l2)
        assert network.impairment("svc").loss == pytest.approx(0.5)
        network.restore("svc", l1)
        assert pristine(network)

    def test_mixed_layers_revert_in_any_order(self, network):
        slow = network.degrade("svc", extra_latency=0.2)
        lossy = network.degrade("svc", loss=0.3, duplicate=0.1)
        # Revert in injection order this time; the reversed order is
        # covered by the cases above.
        network.restore("svc", slow)
        composed = network.impairment("svc")
        assert composed.extra_latency == 0.0
        assert composed.loss == pytest.approx(0.3)
        assert composed.duplicate == pytest.approx(0.1)
        network.restore("svc", lossy)
        assert pristine(network)

    def test_restore_tolerates_double_revert(self, network):
        layer = network.degrade("svc", extra_latency=0.1)
        network.restore("svc", layer)
        network.restore("svc", layer)  # already gone: no-op
        network.restore("absent")      # never impaired: no-op
        assert pristine(network)

    def test_restore_all_clears_the_stack(self, network):
        network.degrade("svc", extra_latency=0.1)
        network.degrade("svc", loss=0.2)
        network.restore("svc")
        assert pristine(network)

    def test_oneway_partitions_stack_per_direction(self, network):
        network.partition_oneway("a", "b")
        network.partition_oneway("a", "b")
        assert network._blocked("a", "b")
        assert not network._blocked("b", "a")
        network.heal_oneway("a", "b")
        assert network._blocked("a", "b")  # one injection still live
        network.heal_oneway("a", "b")
        assert not network._blocked("a", "b")
        network.heal_oneway("a", "b")  # extra heal: no-op
        assert pristine(network)


class TestOverlappingInjections:
    """End-to-end: two ``inject_gray`` windows overlapping on the same
    target, driven through the platform's fault injector with
    durations, must leave the platform pristine after both expire."""

    @pytest.fixture(scope="class")
    def result(self):
        platform = make_platform(seed=13)
        gray = GrayFailureInjector(platform)
        network = platform.network
        address = gray.api_endpoints()[0]
        node_id = platform.etcd.node_ids[0]
        node = platform.etcd.node(node_id)

        # Two slows overlapping on one API endpoint: [1, 4) and [2, 6).
        gray.slow_endpoint(address, 0.01, duration=3.0)
        platform.run_for(1.0)
        gray.slow_endpoint(address, 0.02, duration=4.0)
        # A lossy layer on the same endpoint inside the same window.
        gray.lossy_endpoint(address, loss=0.05, duration=1.0)
        # Two overlapping disk stalls on one etcd node.
        gray.disk_stall_etcd(node_id, 0.005, duration=2.0)
        gray.disk_stall_etcd(node_id, 0.01, duration=4.0)

        samples = {}
        platform.run_for(0.5)  # t=1.5: everything live
        samples["peak_latency"] = network.impairment(address).extra_latency
        samples["peak_loss"] = network.impairment(address).loss
        samples["peak_stall"] = node.disk_stall
        platform.run_for(1.7)  # t=3.2: loss, slow 1 and stall 1 reverted
        samples["mid_latency"] = network.impairment(address).extra_latency
        samples["mid_loss"] = network.impairment(address).loss
        samples["mid_stall"] = node.disk_stall
        platform.run_for(2.5)  # t=5.7: everything reverted
        samples["network_pristine"] = pristine(network)
        samples["end_stall"] = node.disk_stall
        samples["stall_layers"] = dict(gray._stall_layers)
        return samples

    def test_overlapping_slows_compose_then_unwind(self, result):
        assert result["peak_latency"] == pytest.approx(0.03)
        assert result["mid_latency"] == pytest.approx(0.02)

    def test_loss_layer_reverts_without_touching_slows(self, result):
        assert result["peak_loss"] == pytest.approx(0.05)
        assert result["mid_loss"] == 0.0

    def test_overlapping_disk_stalls_sum_then_unwind(self, result):
        assert result["peak_stall"] == pytest.approx(0.015)
        assert result["mid_stall"] == pytest.approx(0.01)
        assert result["end_stall"] == 0.0
        assert result["stall_layers"] == {}

    def test_platform_network_is_pristine_after_expiry(self, result):
        assert result["network_pristine"]
