"""Unit tests for the simulation kernel, events and processes."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    ChannelClosed,
    Channel,
    Interrupt,
    Kernel,
    ProcessKilled,
    SimError,
)


@pytest.fixture
def kernel():
    return Kernel(seed=42)


class TestClock:
    def test_starts_at_zero(self, kernel):
        assert kernel.now == 0.0

    def test_sleep_advances_clock(self, kernel):
        seen = []

        def proc():
            yield kernel.sleep(5.0)
            seen.append(kernel.now)

        kernel.spawn(proc())
        kernel.run()
        assert seen == [5.0]

    def test_run_until_advances_clock_even_when_idle(self, kernel):
        kernel.run(until=100.0)
        assert kernel.now == 100.0

    def test_run_until_does_not_execute_later_events(self, kernel):
        seen = []

        def proc():
            yield kernel.sleep(50.0)
            seen.append("late")

        kernel.spawn(proc())
        kernel.run(until=10.0)
        assert seen == []
        kernel.run(until=60.0)
        assert seen == ["late"]

    def test_run_until_past_raises(self, kernel):
        kernel.run(until=10.0)
        with pytest.raises(SimError):
            kernel.run(until=5.0)

    def test_negative_sleep_rejected(self, kernel):
        with pytest.raises(ValueError):
            kernel.sleep(-1.0)

    def test_fifo_order_for_simultaneous_events(self, kernel):
        order = []

        def proc(tag):
            yield kernel.sleep(1.0)
            order.append(tag)

        for tag in ("a", "b", "c"):
            kernel.spawn(proc(tag))
        kernel.run()
        assert order == ["a", "b", "c"]


class TestProcesses:
    def test_return_value(self, kernel):
        def proc():
            yield kernel.sleep(1.0)
            return 99

        process = kernel.spawn(proc())
        assert kernel.run_until_complete(process) == 99

    def test_join_other_process(self, kernel):
        def child():
            yield kernel.sleep(3.0)
            return "done"

        def parent():
            result = yield kernel.spawn(child())
            return (kernel.now, result)

        process = kernel.spawn(parent())
        assert kernel.run_until_complete(process) == (3.0, "done")

    def test_exception_propagates_to_joiner(self, kernel):
        def child():
            yield kernel.sleep(1.0)
            raise ValueError("boom")

        def parent():
            yield kernel.spawn(child())

        process = kernel.spawn(parent())
        with pytest.raises(ValueError, match="boom"):
            kernel.run_until_complete(process)

    def test_kill_interrupts_sleep(self, kernel):
        def proc():
            yield kernel.sleep(100.0)

        process = kernel.spawn(proc())
        kernel.run(until=5.0)
        process.kill("test")
        kernel.run(until=6.0)
        assert process.triggered
        assert isinstance(process.exception, ProcessKilled)

    def test_kill_allows_cleanup(self, kernel):
        cleaned = []

        def proc():
            try:
                yield kernel.sleep(100.0)
            except ProcessKilled:
                cleaned.append(kernel.now)
                raise

        process = kernel.spawn(proc())
        kernel.run(until=7.0)
        process.kill()
        kernel.run(until=8.0)
        assert cleaned == [7.0]

    def test_kill_finished_process_is_noop(self, kernel):
        def proc():
            yield kernel.sleep(1.0)
            return "ok"

        process = kernel.spawn(proc())
        kernel.run()
        process.kill()
        kernel.run()
        assert process.ok and process.value == "ok"

    def test_interrupt_resumes_process(self, kernel):
        log = []

        def proc():
            try:
                yield kernel.sleep(100.0)
            except Interrupt as intr:
                log.append(intr.cause)
            yield kernel.sleep(1.0)
            return "survived"

        process = kernel.spawn(proc())
        kernel.run(until=2.0)
        process.interrupt("wake")
        result = kernel.run_until_complete(process)
        assert result == "survived"
        assert log == ["wake"]
        assert kernel.now == 3.0

    def test_spawn_requires_generator(self, kernel):
        def not_a_generator():
            return 1

        with pytest.raises(TypeError):
            kernel.spawn(not_a_generator)

    def test_yield_non_event_fails_process(self, kernel):
        def proc():
            yield 42

        process = kernel.spawn(proc())
        kernel.run()
        assert process.state == "failed"
        assert isinstance(process.exception, TypeError)

    def test_run_until_complete_deadlock_detection(self, kernel):
        def proc():
            yield kernel.event()  # never triggered

        process = kernel.spawn(proc())
        with pytest.raises(SimError, match="deadlock"):
            kernel.run_until_complete(process)


class TestEvents:
    def test_event_value_passed_to_waiter(self, kernel):
        event = kernel.event()

        def waiter():
            value = yield event
            return value

        def trigger():
            yield kernel.sleep(2.0)
            event.succeed("payload")

        process = kernel.spawn(waiter())
        kernel.spawn(trigger())
        assert kernel.run_until_complete(process) == "payload"

    def test_event_failure_thrown_into_waiter(self, kernel):
        event = kernel.event()

        def waiter():
            yield event

        process = kernel.spawn(waiter())
        event.fail(RuntimeError("bad"))
        with pytest.raises(RuntimeError, match="bad"):
            kernel.run_until_complete(process)

    def test_double_trigger_rejected(self, kernel):
        event = kernel.event()
        event.succeed(1)
        with pytest.raises(RuntimeError):
            event.succeed(2)

    def test_wait_on_already_triggered_event(self, kernel):
        event = kernel.event()
        event.succeed("early")

        def waiter():
            value = yield event
            return value

        process = kernel.spawn(waiter())
        assert kernel.run_until_complete(process) == "early"

    def test_any_of_returns_first(self, kernel):
        def waiter():
            winner, value = yield AnyOf(kernel, [kernel.sleep(5, "slow"), kernel.sleep(2, "fast")])
            return value

        process = kernel.spawn(waiter())
        assert kernel.run_until_complete(process) == "fast"
        assert kernel.now == 2.0

    def test_all_of_collects_values(self, kernel):
        def waiter():
            values = yield AllOf(kernel, [kernel.sleep(5, "a"), kernel.sleep(2, "b")])
            return values

        process = kernel.spawn(waiter())
        assert kernel.run_until_complete(process) == ["a", "b"]
        assert kernel.now == 5.0

    def test_all_of_empty_completes(self, kernel):
        def waiter():
            values = yield AllOf(kernel, [])
            return values

        process = kernel.spawn(waiter())
        assert kernel.run_until_complete(process) == []

    def test_any_of_empty_rejected(self, kernel):
        with pytest.raises(ValueError):
            AnyOf(kernel, [])


class TestRng:
    def test_streams_are_deterministic(self):
        first = Kernel(seed=7).rng("alpha").random()
        second = Kernel(seed=7).rng("alpha").random()
        assert first == second

    def test_streams_are_independent(self):
        kernel = Kernel(seed=7)
        a1 = kernel.rng("alpha").random()
        kernel2 = Kernel(seed=7)
        kernel2.rng("beta").random()  # draw from another stream first
        a2 = kernel2.rng("alpha").random()
        assert a1 == a2

    def test_different_seeds_differ(self):
        assert Kernel(seed=1).rng("x").random() != Kernel(seed=2).rng("x").random()


class TestChannel:
    def test_put_then_get(self, kernel):
        channel = Channel(kernel)
        channel.put("item")

        def consumer():
            value = yield channel.get()
            return value

        process = kernel.spawn(consumer())
        assert kernel.run_until_complete(process) == "item"

    def test_get_blocks_until_put(self, kernel):
        channel = Channel(kernel)

        def consumer():
            value = yield channel.get()
            return (kernel.now, value)

        def producer():
            yield kernel.sleep(4.0)
            channel.put("late")

        process = kernel.spawn(consumer())
        kernel.spawn(producer())
        assert kernel.run_until_complete(process) == (4.0, "late")

    def test_fifo_ordering(self, kernel):
        channel = Channel(kernel)
        for i in range(3):
            channel.put(i)

        def consumer():
            out = []
            for _ in range(3):
                out.append((yield channel.get()))
            return out

        process = kernel.spawn(consumer())
        assert kernel.run_until_complete(process) == [0, 1, 2]

    def test_close_fails_pending_getters(self, kernel):
        channel = Channel(kernel)

        def consumer():
            yield channel.get()

        process = kernel.spawn(consumer())
        kernel.run(until=1.0)
        channel.close()
        with pytest.raises(ChannelClosed):
            kernel.run_until_complete(process)

    def test_put_on_closed_channel_raises(self, kernel):
        channel = Channel(kernel)
        channel.close()
        with pytest.raises(ChannelClosed):
            channel.put(1)

    def test_get_nowait(self, kernel):
        channel = Channel(kernel)
        assert channel.get_nowait() is None
        channel.put("x")
        assert channel.get_nowait() == "x"


class TestEventEdgeCases:
    def test_any_of_failing_child_fails_composite(self, kernel):
        from repro.sim import AnyOf

        bad = kernel.event()

        def waiter():
            yield AnyOf(kernel, [kernel.sleep(10.0), bad])

        process = kernel.spawn(waiter())
        bad.fail(RuntimeError("child failed"))
        with pytest.raises(RuntimeError, match="child failed"):
            kernel.run_until_complete(process)

    def test_all_of_failing_child_fails_composite(self, kernel):
        from repro.sim import AllOf

        bad = kernel.event()

        def waiter():
            yield AllOf(kernel, [kernel.sleep(1.0), bad])

        process = kernel.spawn(waiter())
        bad.fail(ValueError("nope"))
        with pytest.raises(ValueError, match="nope"):
            kernel.run_until_complete(process)

    def test_remove_callback(self, kernel):
        event = kernel.event()
        calls = []
        callback = lambda ev: calls.append(ev)
        event.add_callback(callback)
        event.remove_callback(callback)
        event.succeed()
        kernel.run()
        assert calls == []

    def test_fail_requires_exception(self, kernel):
        with pytest.raises(TypeError):
            kernel.event().fail("not an exception")

    def test_step_returns_false_when_empty(self, kernel):
        assert kernel.step() is False

    def test_run_until_complete_respects_limit(self, kernel):
        def slow():
            yield kernel.sleep(100.0)

        process = kernel.spawn(slow())
        with pytest.raises(SimError, match="did not finish"):
            kernel.run_until_complete(process, limit=10.0)
