"""Kernel instances never share state (the sharding prerequisite).

Regression tests for the per-instance ownership rules: perf counters,
timer-cancellation accounting, the debug flag, and
``run_until_complete`` deadlines must all be scoped to one
:class:`Kernel` — two scenarios back-to-back in one process start from
zero each time.
"""

import pytest

from repro.bench import bench_manifest, build_platform
from repro.sim import Kernel, SimError


def run_small_scenario():
    """One tiny end-to-end platform run; returns its kernel counters."""
    platform = build_platform("k80", gpus_per_node=4, gpu_nodes=2, seed=7)
    client = platform.client("iso")
    manifest = bench_manifest("resnet50", "tensorflow", 2, "k80", steps=10)

    def drive():
        job_id = yield from client.submit(manifest)
        return (yield from client.wait_for_status(job_id, timeout=100_000))

    doc = platform.run_process(drive(), limit=500_000)
    platform.run_for(10.0)
    assert doc["status"] == "COMPLETED"
    kernel = platform.kernel
    return {
        "events_processed": kernel.events_processed,
        "timers_cancelled": kernel.timers_cancelled,
        "dead_entries_skipped": kernel.dead_entries_skipped,
        "dead_entries_pending": kernel.dead_entries_pending,
        "now": round(kernel.now, 9),
    }


def test_back_to_back_scenarios_start_from_clean_counters():
    first = run_small_scenario()
    second = run_small_scenario()
    # The fast path cancels timers constantly; if any accounting leaked
    # across instances the second run's counters could not match the
    # first run of the identical scenario exactly.
    assert first["timers_cancelled"] > 0
    assert second == first


def test_fresh_kernel_counters_are_zero():
    kernel = Kernel()
    kernel.sleep(1.0).cancel()
    kernel.run()
    assert kernel.timers_cancelled == 1
    assert kernel.dead_entries_skipped == 1
    fresh = Kernel()
    assert fresh.events_processed == 0
    assert fresh.timers_cancelled == 0
    assert fresh.dead_entries_skipped == 0
    assert fresh.dead_entries_pending == 0


def test_cancel_accounts_to_the_owning_kernel_only():
    k1, k2 = Kernel(), Kernel()
    k1.sleep(1.0)
    timer = k1.sleep(2.0)
    k2.sleep(1.0)
    timer.cancel()
    assert (k1.timers_cancelled, k2.timers_cancelled) == (1, 0)
    assert (k1.dead_entries_pending, k2.dead_entries_pending) == (1, 0)
    k1.run()
    k2.run()
    assert (k1.dead_entries_skipped, k2.dead_entries_skipped) == (1, 0)
    assert k1.dead_entries_pending == 0
    assert k2.events_processed > 0


def test_debug_flag_is_per_instance():
    noisy = Kernel(debug=True)
    quiet = Kernel()
    assert noisy.debug is True
    assert quiet.debug is False
    quiet.debug = True
    assert Kernel().debug is False  # no class-level leakage
    assert "debug" not in vars(type(noisy))


def test_run_until_complete_limit_measured_from_call_time():
    kernel = Kernel()
    kernel.run(until=100.0)

    def napper(duration):
        yield kernel.sleep(duration)
        return kernel.now

    # finishing exactly at the deadline is within the limit
    assert kernel.run_until_complete(kernel.spawn(napper(5.0)),
                                     limit=5.0) == 105.0
    with pytest.raises(SimError, match="did not finish within"):
        kernel.run_until_complete(kernel.spawn(napper(6.0)), limit=5.0)


def test_run_until_complete_deadlock_names_the_process():
    kernel = Kernel()

    def waiter():
        yield kernel.event()  # never triggered

    with pytest.raises(SimError, match="deadlock.*waiter"):
        kernel.run_until_complete(kernel.spawn(waiter(), name="waiter"))
