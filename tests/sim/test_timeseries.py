"""Unit tests for the bounded time-series store (scrape storage)."""

from repro.sim.timeseries import TimeSeries, TimeSeriesStore, canonical_labels


class TestTimeSeries:
    def test_add_and_values(self):
        series = TimeSeries("up")
        series.add(1.0, 1.0)
        series.add(2.0, 0.0)
        assert series.values() == [1.0, 0.0]
        assert series.latest() == (2.0, 0.0)

    def test_retention_trims_old_samples(self):
        series = TimeSeries("up", retention=10.0)
        series.add(0.0, 1.0)
        series.add(5.0, 2.0)
        series.add(20.0, 3.0)  # cutoff = 10: drops both earlier samples
        assert series.values() == [3.0]

    def test_max_samples_ring_buffer(self):
        series = TimeSeries("up", max_samples=3)
        for i in range(10):
            series.add(float(i), float(i))
        assert len(series) == 3
        assert series.values() == [7.0, 8.0, 9.0]

    def test_staleness_marker_terminates_series(self):
        series = TimeSeries("up")
        series.add(1.0, 1.0)
        series.mark_stale(2.0)
        assert series.latest_value() is None
        # Markers are invisible to history readers.
        assert series.values() == [1.0]
        assert series.window(0.0, 10.0) == [(1.0, 1.0)]

    def test_mark_stale_is_idempotent(self):
        series = TimeSeries("up")
        series.add(1.0, 1.0)
        series.mark_stale(2.0)
        series.mark_stale(3.0)
        assert len(series) == 2  # one real sample + one marker

    def test_latest_value_staleness_window(self):
        series = TimeSeries("up")
        series.add(1.0, 1.0)
        assert series.latest_value(now=2.0, staleness=5.0) == 1.0
        assert series.latest_value(now=10.0, staleness=5.0) is None

    def test_fresh_sample_after_marker_revives(self):
        series = TimeSeries("up")
        series.add(1.0, 0.0)
        series.mark_stale(2.0)
        series.add(3.0, 1.0)
        assert series.latest_value() == 1.0

    def test_window_bounds(self):
        series = TimeSeries("x")
        for t in (1.0, 2.0, 3.0, 4.0):
            series.add(t, t * 10)
        assert series.window(2.0, 3.0) == [(2.0, 20.0), (3.0, 30.0)]


class TestCanonicalLabels:
    def test_sorted_and_stringified(self):
        assert canonical_labels({"b": 2, "a": "x"}) == (("a", "x"), ("b", "2"))
        assert canonical_labels([]) == ()


class TestTimeSeriesStore:
    def test_series_keyed_by_name_and_labels(self):
        store = TimeSeriesStore()
        store.add("up", {"component": "api"}, 1.0, 1.0)
        store.add("up", {"component": "lcm"}, 1.0, 1.0)
        store.add("depth", {}, 1.0, 4.0)
        assert len(store) == 3
        assert store.names() == ["depth", "up"]
        assert len(store.series("up")) == 2

    def test_label_subset_match(self):
        store = TimeSeriesStore()
        store.add("rpc", {"method": "submit", "quantile": "p99"}, 1.0, 0.5)
        store.add("rpc", {"method": "status", "quantile": "p50"}, 1.0, 0.1)
        matched = store.series("rpc", quantile="p99")
        assert len(matched) == 1
        assert matched[0].labels_dict["method"] == "submit"

    def test_get_exact_labels(self):
        store = TimeSeriesStore()
        store.add("up", {"component": "api"}, 1.0, 1.0)
        assert store.get("up", {"component": "api"}).values() == [1.0]
        assert store.get("up", {"component": "nfs"}) is None

    def test_mark_stale_missing_series_is_noop(self):
        TimeSeriesStore().mark_stale("nope", {}, 1.0)

    def test_per_name_retention_override(self):
        store = TimeSeriesStore(retention=600.0, max_samples=100)
        store.configure("up", retention=5.0, max_samples=2)
        store.add("up", {}, 0.0, 1.0)
        store.add("up", {}, 1.0, 1.0)
        store.add("up", {}, 2.0, 1.0)  # max_samples=2 evicts the first
        assert store.get("up").values() == [1.0, 1.0]
        store.add("up", {}, 20.0, 0.0)  # retention=5 evicts the rest
        assert store.get("up").values() == [0.0]
        # Other names keep the store-wide defaults.
        series = store._get_or_create("other", {})
        assert series.retention == 600.0
