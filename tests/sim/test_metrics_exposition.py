"""Satellite regression tests: snapshot None-safety, label escaping,
and the bucket-derived quantile estimator the scraper relies on."""

import json

from repro.sim import MetricsRegistry


class TestEmptyHistogramSnapshot:
    def test_zero_observation_child_reports_none(self):
        registry = MetricsRegistry()
        hist = registry.histogram("rpc_seconds", ("method",))
        hist.labels(method="submit")  # child exists, never observed
        snap = registry.snapshot()
        entry = snap['rpc_seconds{method="submit"}']
        assert entry["count"] == 0
        for stat in ("mean", "min", "max", "p50", "p95", "p99"):
            assert entry[stat] is None, stat

    def test_snapshot_is_json_serializable(self):
        registry = MetricsRegistry()
        registry.histogram("empty_hist").labels()
        registry.counter("hits").inc()
        text = json.dumps(registry.snapshot())  # NaN would raise here
        assert "NaN" not in text

    def test_observed_child_still_reports_stats(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h")
        hist.observe(2.0)
        entry = registry.snapshot()["h"]
        assert entry == {"count": 1, "mean": 2.0, "min": 2.0, "max": 2.0,
                         "p50": 2.0, "p95": 2.0, "p99": 2.0}


class TestLabelEscaping:
    def test_pathological_label_values_escaped(self):
        registry = MetricsRegistry()
        counter = registry.counter("jobs_total", ("job",))
        counter.labels(job='weird"job\\name\nwith newline').inc()
        text = registry.expose()
        assert 'job="weird\\"job\\\\name\\nwith newline"' in text
        # The raw control characters never reach the exposition.
        payload = [line for line in text.splitlines()
                   if line.startswith("jobs_total{")]
        assert len(payload) == 1
        assert payload[0].endswith(" 1")

    def test_help_text_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c", help="line one\nline two \\ backslash").inc()
        text = registry.expose()
        assert "# HELP c line one\\nline two \\\\ backslash" in text

    def test_plain_values_unchanged(self):
        registry = MetricsRegistry()
        registry.counter("ops_total", ("op",)).labels(op="submit").inc()
        assert 'ops_total{op="submit"} 1' in registry.expose()


class TestBucketPercentile:
    def test_empty_child_returns_none(self):
        hist = MetricsRegistry().histogram("h")
        assert hist.labels().bucket_percentile(50) is None

    def test_interpolates_within_bucket(self):
        hist = MetricsRegistry().histogram("h", buckets=(1.0, 2.0, 4.0))
        child = hist.labels()
        for value in (1.5, 1.5, 1.5, 1.5):  # all in the (1, 2] bucket
            child.observe(value)
        p50 = child.bucket_percentile(50)
        assert 1.0 < p50 <= 2.0

    def test_first_bucket_interpolates_from_zero(self):
        hist = MetricsRegistry().histogram("h", buckets=(1.0, 2.0))
        child = hist.labels()
        child.observe(0.5)
        assert 0.0 < child.bucket_percentile(99) <= 1.0

    def test_inf_bucket_clamps_to_largest_bound(self):
        hist = MetricsRegistry().histogram("h", buckets=(1.0, 2.0))
        child = hist.labels()
        child.observe(100.0)
        assert child.bucket_percentile(99) == 2.0

    def test_tracks_exact_percentile_roughly(self):
        hist = MetricsRegistry().histogram("h")
        child = hist.labels()
        for i in range(1, 101):
            child.observe(i / 100.0)
        exact = child.percentile(95)
        estimate = child.bucket_percentile(95)
        assert abs(estimate - exact) < 0.3
