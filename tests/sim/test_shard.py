"""The sharded kernel: window protocol, determinism, accounting.

The toy programs here are module-level classes/builders on purpose —
that is the contract of :class:`repro.sim.shard.ShardedKernel`
(multiprocessing workers rebuild shards from pickled specs).
"""

import pytest

from repro.sim import Kernel, ShardSlot, ShardedKernel, SimError, merged_digest


class RingProgram:
    """Each shard beats ``beats`` times, sending each beat to the next
    shard in the ring; received beats are logged with timestamps."""

    def __init__(self, slot, beats, interval=1.0):
        self.kernel = Kernel(seed=slot.shard_id)
        self.port = slot.bind(self.kernel)
        self.shard_id = slot.shard_id
        self.num_shards = slot.num_shards
        self.received = []
        self.port.on("beat", self._on_beat)
        self.proc = self.kernel.spawn(self._drive(beats, interval))

    def _on_beat(self, src, payload):
        self.received.append((round(self.kernel.now, 9), src, payload["n"]))

    def _drive(self, beats, interval):
        for n in range(beats):
            yield self.kernel.sleep(interval)
            if self.num_shards > 1:
                self.port.send((self.shard_id + 1) % self.num_shards,
                               "beat", {"n": n, "from": self.shard_id})

    @property
    def done(self):
        return self.proc.triggered

    def settle_time(self):
        return self.kernel.now

    def result(self):
        return {"shard": self.shard_id, "received": tuple(self.received),
                "now": round(self.kernel.now, 9)}


def build_ring(slot, beats, interval=1.0):
    return RingProgram(slot, beats, interval)


def _noop():
    return
    yield  # pragma: no cover — makes this a generator function


class IdleProgram:
    """Finishes immediately, receives anything, sends nothing."""

    def __init__(self, slot):
        self.kernel = Kernel(seed=slot.shard_id)
        self.port = slot.bind(self.kernel)
        self.port.on("beat", lambda src, payload: None)
        self.proc = self.kernel.spawn(_noop())

    @property
    def done(self):
        return self.proc.triggered

    def settle_time(self):
        return self.kernel.now + 5.0

    def result(self):
        return {"shard": self.port.shard_id}


def build_idle(slot):
    return IdleProgram(slot)


class LateSender(IdleProgram):
    """Driver completes at t=1 but a straggler process sends a boundary
    message at t=2 — i.e. during the settle run, after routing stopped."""

    def __init__(self, slot):
        super().__init__(slot)
        self.proc = self.kernel.spawn(self._drive())

    def _drive(self):
        yield self.kernel.sleep(1.0)
        self.kernel.spawn(self._late())

    def _late(self):
        yield self.kernel.sleep(1.0)
        self.port.send(1, "beat", {"n": -1, "from": 0})


def build_late(slot):
    return LateSender(slot)


class NeverDone(IdleProgram):
    """Queue drains but the program never reports completion."""

    done = False


def build_never_done(slot):
    return NeverDone(slot)


def ring_specs(shards, beats, interval=1.0):
    return [(build_ring, (beats,), {"interval": interval})
            for _ in range(shards)]


# ----------------------------------------------------------------------
# Protocol behaviour
# ----------------------------------------------------------------------


def test_ring_delivers_every_beat_with_lookahead_latency():
    sharded = ShardedKernel(ring_specs(3, beats=4), lookahead=0.5,
                            executor="inline").run()
    for result in sharded.results:
        prev = (result["shard"] - 1) % 3
        # beat n is sent at n+1 and lands exactly lookahead later
        assert result["received"] == tuple(
            (round(n + 1 + 0.5, 9), prev, n) for n in range(4))
    assert sharded.stats["messages_sent"] == 12
    assert sharded.stats["messages_received"] == 12
    assert sharded.stats["messages_routed"] == 12
    assert sharded.stats["messages_dropped"] == 0


def test_single_shard_runs_without_boundary_traffic():
    sharded = ShardedKernel(ring_specs(1, beats=3), lookahead=0.5,
                            executor="inline").run()
    assert sharded.results[0]["received"] == ()
    assert sharded.stats["messages_sent"] == 0


def test_process_executor_matches_inline_bit_for_bit():
    inline = ShardedKernel(ring_specs(4, beats=5), lookahead=0.25,
                           executor="inline").run()
    forked = ShardedKernel(ring_specs(4, beats=5), lookahead=0.25,
                           workers=4, executor="process").run()
    assert forked.results == inline.results
    assert forked.message_digest == inline.message_digest
    assert forked.stats == inline.stats


def test_worker_count_does_not_change_results():
    reference = ShardedKernel(ring_specs(4, beats=3), lookahead=0.25,
                              workers=1, executor="process").run()
    for workers in (2, 3):
        run = ShardedKernel(ring_specs(4, beats=3), lookahead=0.25,
                            workers=workers, executor="process").run()
        assert run.results == reference.results
        assert run.message_digest == reference.message_digest


def test_settle_phase_sends_are_dropped_and_counted():
    sharded = ShardedKernel(
        [(build_late, (), {}), (build_idle, (), {})],
        lookahead=0.25, executor="inline").run()
    assert sharded.stats["messages_sent"] == 1
    assert sharded.stats["messages_received"] == 0
    assert sharded.stats["messages_dropped"] == 1


def test_deadlock_detected_when_program_never_completes():
    with pytest.raises(SimError, match="sharded deadlock"):
        ShardedKernel([(build_never_done, (), {})], lookahead=0.25,
                      executor="inline").run()


def test_limit_caps_global_simulated_time():
    with pytest.raises(SimError, match="exceeded limit"):
        ShardedKernel(ring_specs(2, beats=100), lookahead=0.25,
                      executor="inline").run(limit=5.0)


def test_max_epochs_backstop():
    with pytest.raises(SimError, match="epochs"):
        ShardedKernel(ring_specs(2, beats=100), lookahead=0.25,
                      executor="inline").run(max_epochs=3)


# ----------------------------------------------------------------------
# Port validation
# ----------------------------------------------------------------------


def make_port(shard_id=0, num_shards=2, lookahead=0.5):
    return ShardSlot(shard_id, num_shards, lookahead).bind(Kernel())


def test_send_to_own_shard_rejected():
    with pytest.raises(SimError, match="own shard"):
        make_port().send(0, "beat", {})


def test_send_below_lookahead_rejected():
    with pytest.raises(SimError, match="undercuts lookahead"):
        make_port().send(1, "beat", {}, delay=0.1)


def test_send_to_unknown_shard_rejected():
    with pytest.raises(SimError, match="unknown destination"):
        make_port().send(7, "beat", {})


def test_duplicate_handler_rejected():
    port = make_port()
    port.on("beat", lambda s, p: None)
    with pytest.raises(ValueError, match="already registered"):
        port.on("beat", lambda s, p: None)


def test_deliver_without_handler_rejected():
    sender = make_port(shard_id=1)
    message = sender.send(0, "beat", {})
    with pytest.raises(SimError, match="no handler"):
        make_port().deliver(message)


def test_payload_serialized_once_and_isolated():
    sender = make_port(shard_id=1)
    payload = {"nested": [1, 2, 3]}
    message = sender.send(0, "beat", payload)
    payload["nested"].append(4)  # sender-side mutation after send
    received = []
    receiver = make_port()
    receiver.on("beat", lambda src, p: received.append(p))
    receiver.deliver(message)
    receiver.kernel.run()
    assert received == [{"nested": [1, 2, 3]}]
    received[0]["nested"].clear()  # receiver-side mutation stays local
    assert payload == {"nested": [1, 2, 3, 4]}


def test_positive_lookahead_required():
    with pytest.raises(ValueError, match="lookahead"):
        ShardSlot(0, 1, 0.0).bind(Kernel())


# ----------------------------------------------------------------------
# Kernel window primitives
# ----------------------------------------------------------------------


def test_run_window_executes_strictly_before_end():
    kernel = Kernel()
    fired = []
    for when in (1.0, 2.0, 3.0):
        kernel._schedule_at(when, lambda w=when: fired.append(w))
    assert kernel.run_window(2.0) == 1  # strictly < end: 2.0 stays queued
    assert fired == [1.0]
    assert kernel.now == 1.0  # clock stays at the last executed event
    assert kernel.peek_time() == 2.0
    assert kernel.run_window(10.0) == 2
    assert fired == [1.0, 2.0, 3.0]
    assert kernel.peek_time() is None


def test_merged_digest_is_order_sensitive():
    assert merged_digest(["a", "b"], "m") != merged_digest(["b", "a"], "m")
    assert merged_digest(["a", "b"], "m") != merged_digest(["a", "b"], "n")
    assert merged_digest(["a", "b"], "m") == merged_digest(("a", "b"), "m")
