"""Kernel fast-path semantics: cancellable timers, lazy heap deletion,
callback detachment, and the run_until_complete deadline check."""

import pytest

from repro.sim.errors import SimError
from repro.sim.kernel import Kernel


class TestTimerCancellation:
    def test_cancelled_timer_never_fires(self):
        kernel = Kernel()
        timer = kernel.sleep(5.0)
        fired = []
        timer.add_callback(fired.append)
        timer.cancel()
        kernel.run()
        assert fired == []
        assert timer.cancelled
        assert kernel.timers_cancelled == 1

    def test_lazy_deletion_counts_dead_pops(self):
        kernel = Kernel()
        timer = kernel.sleep(5.0)
        timer.cancel()
        assert kernel.dead_entries_pending == 1
        kernel.run()  # the dead entry pops and is skipped, not dispatched
        assert kernel.dead_entries_skipped == 1
        assert kernel.dead_entries_pending == 0
        assert kernel.dead_entry_ratio == pytest.approx(1.0)

    def test_cancel_after_fire_is_noop(self):
        kernel = Kernel()
        timer = kernel.sleep(1.0)
        kernel.run()
        assert timer.ok
        timer.cancel()
        assert timer.ok  # still succeeded, not cancelled
        assert kernel.timers_cancelled == 0

    def test_slow_path_disables_cancellation(self):
        kernel = Kernel(timer_cancellation=False)
        timer = kernel.sleep(5.0)
        fired = []
        timer.add_callback(fired.append)
        timer.cancel()  # must be a no-op on the compat path
        kernel.run()
        assert fired == [timer]
        assert kernel.timers_cancelled == 0
        assert kernel.dead_entries_skipped == 0

    def test_add_callback_on_cancelled_event_raises(self):
        kernel = Kernel()
        timer = kernel.sleep(1.0)
        timer.cancel()
        with pytest.raises(RuntimeError):
            timer.add_callback(lambda ev: None)

    def test_sleep_value_still_delivered(self):
        kernel = Kernel()
        got = []

        def proc():
            got.append((yield kernel.sleep(2.0, value="tick")))

        kernel.spawn(proc())
        kernel.run()
        assert got == ["tick"]


class TestAnyOfDetachment:
    def test_loser_callbacks_detached_after_race(self):
        kernel = Kernel()
        fast = kernel.sleep(1.0)
        slow = kernel.event()  # long-lived loser (e.g. a stop event)
        results = []

        def proc():
            winner, value = yield kernel.any_of([fast, slow])
            results.append(winner)

        kernel.spawn(proc())
        kernel.run()
        assert results == [fast]
        # The composite removed itself from the loser: repeated races
        # against a long-lived event must not accumulate callbacks.
        assert slow._callbacks == []

    def test_repeated_races_do_not_accumulate(self):
        kernel = Kernel()
        stop = kernel.event()

        def racer():
            for _ in range(50):
                yield kernel.any_of([kernel.sleep(0.1), stop])

        kernel.spawn(racer())
        kernel.run()
        assert stop._callbacks == []


class TestRunUntilCompleteDeadline:
    def test_limit_enforced_against_future_queue(self):
        kernel = Kernel()

        def hangs():
            yield kernel.sleep(100.0)

        process = kernel.spawn(hangs())
        with pytest.raises(SimError, match="did not finish"):
            kernel.run_until_complete(process, limit=10.0)
        # The clock must not have run past the deadline chasing the
        # out-of-range timer.
        assert kernel.now <= 10.0

    def test_deadlock_detected(self):
        kernel = Kernel()

        def waits_forever():
            yield kernel.event()

        process = kernel.spawn(waits_forever())
        with pytest.raises(SimError, match="deadlock"):
            kernel.run_until_complete(process, limit=10.0)

    def test_counts_events(self):
        kernel = Kernel()

        def proc():
            for _ in range(5):
                yield kernel.sleep(1.0)

        kernel.run_until_complete(kernel.spawn(proc()))
        assert kernel.events_processed > 0
