"""Unit tests for metrics, tracing and fault injection."""

import math

import pytest

from repro.sim import FaultInjector, Kernel, MetricsRegistry, Tracer


@pytest.fixture
def kernel():
    return Kernel(seed=3)


class TestMetrics:
    def test_counter_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").inc(-1)

    def test_gauge_up_down(self):
        gauge = MetricsRegistry().gauge("inflight")
        gauge.inc()
        gauge.inc()
        gauge.dec()
        assert gauge.value == 1
        gauge.set(10)
        assert gauge.value == 10

    def test_histogram_stats(self):
        histogram = MetricsRegistry().histogram("latency")
        for value in (1.0, 2.0, 3.0, 4.0):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.mean == 2.5
        assert histogram.minimum == 1.0
        assert histogram.maximum == 4.0
        assert histogram.percentile(50) == 2.0
        assert histogram.percentile(100) == 4.0

    def test_empty_histogram_is_nan(self):
        histogram = MetricsRegistry().histogram("empty")
        assert math.isnan(histogram.mean)
        assert math.isnan(histogram.percentile(50))

    def test_percentile_bounds_checked(self):
        histogram = MetricsRegistry().histogram("h")
        histogram.observe(1)
        with pytest.raises(ValueError):
            histogram.percentile(101)

    def test_same_name_same_metric(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(2)
        registry.histogram("b").observe(5)
        snap = registry.snapshot()
        assert snap["a"] == 2
        assert snap["b"]["count"] == 1
        assert registry.names() == ["a", "b"]

    def test_snapshot_includes_percentiles(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat")
        for value in range(1, 101):
            hist.observe(float(value))
        snap = registry.snapshot()["lat"]
        assert snap["p50"] == 50.0
        assert snap["p95"] == 95.0
        assert snap["p99"] == 99.0

    def test_percentile_cache_invalidated_on_observe(self):
        hist = MetricsRegistry().histogram("h")
        hist.observe(10.0)
        assert hist.percentile(50) == 10.0
        assert hist.percentile(99) == 10.0  # served from the cached sort
        hist.observe(1.0)  # must invalidate the cache
        assert hist.percentile(50) == 1.0
        assert hist.percentile(100) == 10.0

    def test_dynamic_name_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("logs.{job}.lines")


class TestLabeledMetrics:
    def test_labeled_children_are_independent(self):
        registry = MetricsRegistry()
        calls = registry.counter("rpc_calls_total", ("method", "code"))
        calls.labels(method="submit", code="ok").inc()
        calls.labels(method="submit", code="ok").inc()
        calls.labels(method="halt", code="error").inc()
        assert calls.labels(method="submit", code="ok").value == 2
        assert calls.labels(method="halt", code="error").value == 1

    def test_label_set_must_match_schema(self):
        registry = MetricsRegistry()
        calls = registry.counter("c", ("method",))
        with pytest.raises(ValueError):
            calls.labels(verb="submit")
        with pytest.raises(ValueError):
            calls.labels(method="x", extra="y")
        with pytest.raises(ValueError):
            calls.inc()  # labeled family has no default child

    def test_labelnames_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("c", ("method",))
        with pytest.raises(ValueError):
            registry.counter("c", ("verb",))

    def test_invalid_label_name_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c", ("bad-label",))

    def test_snapshot_keys_carry_labels(self):
        registry = MetricsRegistry()
        registry.gauge("depth", ("name",)).labels(name="q1").set(3)
        snap = registry.snapshot()
        assert snap['depth{name="q1"}'] == 3

    def test_labeled_histogram(self):
        registry = MetricsRegistry()
        hist = registry.histogram("dur", ("op",))
        hist.labels(op="read").observe(1.0)
        hist.labels(op="read").observe(3.0)
        hist.labels(op="write").observe(10.0)
        assert hist.labels(op="read").count == 2
        assert hist.labels(op="read").mean == 2.0
        assert hist.labels(op="write").percentile(50) == 10.0


class TestExposition:
    def test_counter_and_gauge_lines(self):
        registry = MetricsRegistry()
        registry.counter("reqs_total", ("code",),
                         help="Requests").labels(code="ok").inc(3)
        registry.gauge("inflight").set(2)
        text = registry.expose()
        assert "# HELP reqs_total Requests" in text
        assert "# TYPE reqs_total counter" in text
        assert 'reqs_total{code="ok"} 3' in text
        assert "# TYPE inflight gauge" in text
        assert "inflight 2" in text.splitlines()
        assert text.endswith("\n")

    def test_histogram_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", buckets=(1.0, 5.0))
        for value in (0.5, 0.7, 3.0, 100.0):
            hist.observe(value)
        lines = registry.expose().splitlines()
        assert 'lat_bucket{le="1"} 2' in lines
        assert 'lat_bucket{le="5"} 3' in lines
        assert 'lat_bucket{le="+Inf"} 4' in lines
        assert "lat_sum 104.2" in lines
        assert "lat_count 4" in lines

    def test_dotted_names_exposed_with_underscores(self):
        registry = MetricsRegistry()
        registry.counter("lcm.deploys").inc()
        text = registry.expose()
        assert "lcm_deploys 1" in text.splitlines()
        assert "lcm.deploys" not in text

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c", ("msg",)).labels(msg='a"b\\c\nd').inc()
        assert 'c{msg="a\\"b\\\\c\\nd"} 1' in registry.expose()


class TestTracer:
    def test_records_time_and_fields(self, kernel):
        tracer = Tracer(kernel)

        def proc():
            yield kernel.sleep(3.0)
            tracer.emit("api", "ready", pod="api-1")

        kernel.spawn(proc())
        kernel.run()
        record = tracer.records[0]
        assert record.time == 3.0
        assert record.component == "api"
        assert record.fields == {"pod": "api-1"}

    def test_query_filters(self, kernel):
        tracer = Tracer(kernel)
        tracer.emit("api", "ready", pod="a")
        tracer.emit("api", "crash", pod="a")
        tracer.emit("lcm", "ready", pod="b")
        assert len(tracer.query(component="api")) == 2
        assert len(tracer.query(kind="ready")) == 2
        assert len(tracer.query(component="api", kind="ready")) == 1
        assert tracer.query(pod="b")[0].component == "lcm"

    def test_query_since(self, kernel):
        tracer = Tracer(kernel)
        tracer.emit("x", "a")

        def later():
            yield kernel.sleep(10.0)
            tracer.emit("x", "b")

        kernel.spawn(later())
        kernel.run()
        assert [r.kind for r in tracer.query(since=5.0)] == ["b"]

    def test_first_and_last(self, kernel):
        tracer = Tracer(kernel)
        assert tracer.first(kind="nope") is None
        tracer.emit("x", "e", n=1)
        tracer.emit("x", "e", n=2)
        assert tracer.first(kind="e").fields["n"] == 1
        assert tracer.last(kind="e").fields["n"] == 2

    def test_intervals_with_key(self, kernel):
        tracer = Tracer(kernel)

        def proc():
            tracer.emit("k", "start", id="a")
            yield kernel.sleep(2.0)
            tracer.emit("k", "start", id="b")
            yield kernel.sleep(3.0)
            tracer.emit("k", "end", id="a")
            yield kernel.sleep(1.0)
            tracer.emit("k", "end", id="b")

        kernel.spawn(proc())
        kernel.run()
        durations = tracer.intervals("start", "end", component="k",
                                     key=lambda r: r.fields["id"])
        assert durations == [5.0, 4.0]

    def test_intervals_unkeyed_interleaved(self, kernel):
        # Without a key, ends pair FIFO with the earliest unmatched
        # start, so interleaved records yield every interval instead of
        # silently dropping ends.
        tracer = Tracer(kernel)

        def proc():
            tracer.emit("k", "start")        # t=0
            yield kernel.sleep(2.0)
            tracer.emit("k", "start")        # t=2
            yield kernel.sleep(1.0)
            tracer.emit("k", "end")          # t=3 -> pairs with t=0
            yield kernel.sleep(4.0)
            tracer.emit("k", "end")          # t=7 -> pairs with t=2

        kernel.spawn(proc())
        kernel.run()
        assert tracer.intervals("start", "end", component="k") == [3.0, 5.0]

    def test_intervals_unkeyed_ignores_unmatched_end(self, kernel):
        tracer = Tracer(kernel)
        tracer.emit("k", "end")
        tracer.emit("k", "start")
        tracer.emit("k", "end")
        assert tracer.intervals("start", "end", component="k") == [0.0]


class TestFaultInjector:
    def test_crash_after_fires_once(self, kernel):
        crashes = []
        injector = FaultInjector(kernel)
        injector.crash_after(5.0, "svc", lambda: crashes.append(kernel.now))
        kernel.run(until=20.0)
        assert crashes == [5.0]
        assert list(injector.injected) == [(5.0, "svc", "scheduled")]

    def test_poisson_crashes_respect_mtbf(self, kernel):
        crashes = []
        injector = FaultInjector(kernel)
        injector.poisson_crashes("svc", lambda: crashes.append(kernel.now),
                                 mtbf=10.0, until=2000.0)
        kernel.run(until=2000.0)
        # ~200 expected; very loose bounds.
        assert 100 < len(crashes) < 320
        gaps = [b - a for a, b in zip(crashes, crashes[1:])]
        mean_gap = sum(gaps) / len(gaps)
        assert 7.0 < mean_gap < 14.0

    def test_poisson_skips_dead_targets(self, kernel):
        crashes = []
        alive = {"up": True}
        injector = FaultInjector(kernel)
        injector.poisson_crashes("svc", lambda: crashes.append(kernel.now),
                                 mtbf=5.0, until=100.0,
                                 alive=lambda: alive["up"])
        kernel.run(until=50.0)
        seen = len(crashes)
        alive["up"] = False
        kernel.run(until=100.0)
        assert len(crashes) == seen

    def test_invalid_mtbf(self, kernel):
        with pytest.raises(ValueError):
            FaultInjector(kernel).poisson_crashes("x", lambda: None, mtbf=0)

    def test_tracer_records_injections(self, kernel):
        tracer = Tracer(kernel)
        injector = FaultInjector(kernel, tracer=tracer)
        injector.crash_after(1.0, "svc", lambda: None)
        kernel.run(until=2.0)
        assert tracer.query(component="fault-injector", kind="crash-injected")

    def test_injected_ring_is_bounded(self, kernel):
        injector = FaultInjector(kernel, injected_cap=10)
        for i in range(25):
            injector.crash_at(float(i), f"svc-{i}", lambda: None)
        kernel.run(until=30.0)
        assert len(injector.injected) == 10
        # The ring keeps the most recent injections.
        assert list(injector.injected)[0] == (15.0, "svc-15", "scheduled")
        assert list(injector.injected)[-1] == (24.0, "svc-24", "scheduled")

    def test_injection_counter_metric(self, kernel):
        registry = MetricsRegistry()
        injector = FaultInjector(kernel, metrics=registry)
        injector.crash_after(1.0, "svc", lambda: None)
        injector.inject_gray("ep", "slow", apply=lambda: None)
        kernel.run(until=2.0)
        family = registry.get("fault_injected_total")
        assert family.labels(target="svc", kind="crash").value == 1
        assert family.labels(target="ep", kind="slow").value == 1

    def test_inject_gray_applies_and_reverts(self, kernel):
        state = {"degraded": False}
        injector = FaultInjector(kernel)

        def apply():
            state["degraded"] = True

        def revert():
            state["degraded"] = False

        injector.inject_gray("ep", "slow", apply=apply, revert=revert,
                             duration=5.0, delay=2.0)
        kernel.run(until=1.0)
        assert not state["degraded"]  # delay not yet elapsed
        kernel.run(until=3.0)
        assert state["degraded"]
        kernel.run(until=8.0)
        assert not state["degraded"]  # reverted at t=7
        assert list(injector.injected) == [(2.0, "ep", "slow")]

    def test_inject_gray_validates_arguments(self, kernel):
        injector = FaultInjector(kernel)
        with pytest.raises(ValueError):
            injector.inject_gray("ep", "slow", apply=lambda: None, duration=0)
        with pytest.raises(ValueError):
            injector.inject_gray("ep", "slow", apply=lambda: None, delay=-1)
