"""Unit tests for metrics, tracing and fault injection."""

import math

import pytest

from repro.sim import FaultInjector, Kernel, MetricsRegistry, Tracer


@pytest.fixture
def kernel():
    return Kernel(seed=3)


class TestMetrics:
    def test_counter_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").inc(-1)

    def test_gauge_up_down(self):
        gauge = MetricsRegistry().gauge("inflight")
        gauge.inc()
        gauge.inc()
        gauge.dec()
        assert gauge.value == 1
        gauge.set(10)
        assert gauge.value == 10

    def test_histogram_stats(self):
        histogram = MetricsRegistry().histogram("latency")
        for value in (1.0, 2.0, 3.0, 4.0):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.mean == 2.5
        assert histogram.minimum == 1.0
        assert histogram.maximum == 4.0
        assert histogram.percentile(50) == 2.0
        assert histogram.percentile(100) == 4.0

    def test_empty_histogram_is_nan(self):
        histogram = MetricsRegistry().histogram("empty")
        assert math.isnan(histogram.mean)
        assert math.isnan(histogram.percentile(50))

    def test_percentile_bounds_checked(self):
        histogram = MetricsRegistry().histogram("h")
        histogram.observe(1)
        with pytest.raises(ValueError):
            histogram.percentile(101)

    def test_same_name_same_metric(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(2)
        registry.histogram("b").observe(5)
        snap = registry.snapshot()
        assert snap["a"] == 2
        assert snap["b"]["count"] == 1
        assert registry.names() == ["a", "b"]


class TestTracer:
    def test_records_time_and_fields(self, kernel):
        tracer = Tracer(kernel)

        def proc():
            yield kernel.sleep(3.0)
            tracer.emit("api", "ready", pod="api-1")

        kernel.spawn(proc())
        kernel.run()
        record = tracer.records[0]
        assert record.time == 3.0
        assert record.component == "api"
        assert record.fields == {"pod": "api-1"}

    def test_query_filters(self, kernel):
        tracer = Tracer(kernel)
        tracer.emit("api", "ready", pod="a")
        tracer.emit("api", "crash", pod="a")
        tracer.emit("lcm", "ready", pod="b")
        assert len(tracer.query(component="api")) == 2
        assert len(tracer.query(kind="ready")) == 2
        assert len(tracer.query(component="api", kind="ready")) == 1
        assert tracer.query(pod="b")[0].component == "lcm"

    def test_query_since(self, kernel):
        tracer = Tracer(kernel)
        tracer.emit("x", "a")

        def later():
            yield kernel.sleep(10.0)
            tracer.emit("x", "b")

        kernel.spawn(later())
        kernel.run()
        assert [r.kind for r in tracer.query(since=5.0)] == ["b"]

    def test_first_and_last(self, kernel):
        tracer = Tracer(kernel)
        assert tracer.first(kind="nope") is None
        tracer.emit("x", "e", n=1)
        tracer.emit("x", "e", n=2)
        assert tracer.first(kind="e").fields["n"] == 1
        assert tracer.last(kind="e").fields["n"] == 2

    def test_intervals_with_key(self, kernel):
        tracer = Tracer(kernel)

        def proc():
            tracer.emit("k", "start", id="a")
            yield kernel.sleep(2.0)
            tracer.emit("k", "start", id="b")
            yield kernel.sleep(3.0)
            tracer.emit("k", "end", id="a")
            yield kernel.sleep(1.0)
            tracer.emit("k", "end", id="b")

        kernel.spawn(proc())
        kernel.run()
        durations = tracer.intervals("start", "end", component="k",
                                     key=lambda r: r.fields["id"])
        assert durations == [5.0, 4.0]


class TestFaultInjector:
    def test_crash_after_fires_once(self, kernel):
        crashes = []
        injector = FaultInjector(kernel)
        injector.crash_after(5.0, "svc", lambda: crashes.append(kernel.now))
        kernel.run(until=20.0)
        assert crashes == [5.0]
        assert injector.injected == [(5.0, "svc", "scheduled")]

    def test_poisson_crashes_respect_mtbf(self, kernel):
        crashes = []
        injector = FaultInjector(kernel)
        injector.poisson_crashes("svc", lambda: crashes.append(kernel.now),
                                 mtbf=10.0, until=2000.0)
        kernel.run(until=2000.0)
        # ~200 expected; very loose bounds.
        assert 100 < len(crashes) < 320
        gaps = [b - a for a, b in zip(crashes, crashes[1:])]
        mean_gap = sum(gaps) / len(gaps)
        assert 7.0 < mean_gap < 14.0

    def test_poisson_skips_dead_targets(self, kernel):
        crashes = []
        alive = {"up": True}
        injector = FaultInjector(kernel)
        injector.poisson_crashes("svc", lambda: crashes.append(kernel.now),
                                 mtbf=5.0, until=100.0,
                                 alive=lambda: alive["up"])
        kernel.run(until=50.0)
        seen = len(crashes)
        alive["up"] = False
        kernel.run(until=100.0)
        assert len(crashes) == seen

    def test_invalid_mtbf(self, kernel):
        with pytest.raises(ValueError):
            FaultInjector(kernel).poisson_crashes("x", lambda: None, mtbf=0)

    def test_tracer_records_injections(self, kernel):
        tracer = Tracer(kernel)
        injector = FaultInjector(kernel, tracer=tracer)
        injector.crash_after(1.0, "svc", lambda: None)
        kernel.run(until=2.0)
        assert tracer.query(component="fault-injector", kind="crash-injected")
