"""Unit tests for the reconciler runtime (work queue, watch pumps)."""

import pytest

from repro.sim import (
    Channel,
    ChannelClosed,
    Kernel,
    Reconciler,
    WatchSource,
    WorkQueue,
)


@pytest.fixture
def kernel():
    return Kernel(seed=1)


def drain(kernel, queue, count):
    """Run a process collecting ``count`` keys (with their times)."""
    got = []

    def getter():
        while len(got) < count:
            key = yield queue.get()
            got.append((kernel.now, key))

    kernel.spawn(getter())
    return got


class TestWorkQueueCoalescing:
    def test_duplicate_adds_coalesce(self, kernel):
        queue = WorkQueue(kernel)
        queue.add("a")
        queue.add("a")
        queue.add("b")
        assert len(queue) == 2
        assert queue.adds == 3
        assert queue.coalesced == 1

    def test_fifo_dispatch(self, kernel):
        queue = WorkQueue(kernel)
        for key in ("a", "b", "c"):
            queue.add(key)
        got = drain(kernel, queue, 3)
        kernel.run(until=1.0)
        assert [key for _t, key in got] == ["a", "b", "c"]

    def test_key_can_be_readded_after_dispatch(self, kernel):
        queue = WorkQueue(kernel)
        got = drain(kernel, queue, 2)
        queue.add("a")
        kernel.run(until=0.1)
        queue.add("a")  # no longer queued: must not coalesce away
        kernel.run(until=0.2)
        assert [key for _t, key in got] == ["a", "a"]

    def test_waiting_getter_receives_directly(self, kernel):
        queue = WorkQueue(kernel)
        got = drain(kernel, queue, 1)
        kernel.run(until=0.1)
        queue.add("a")
        kernel.run(until=0.2)
        assert [key for _t, key in got] == ["a"]
        assert len(queue) == 0


class TestWorkQueueDelaysAndBackoff:
    def test_add_after_fires_at_delay(self, kernel):
        queue = WorkQueue(kernel)
        got = drain(kernel, queue, 1)
        queue.add_after("a", 2.5)
        kernel.run(until=5.0)
        assert got == [(2.5, "a")]

    def test_delayed_adds_keep_earliest_fire_time(self, kernel):
        queue = WorkQueue(kernel)
        got = drain(kernel, queue, 1)
        queue.add_after("a", 3.0)
        queue.add_after("a", 1.0)  # earlier wins
        queue.add_after("a", 9.0)  # later is absorbed
        kernel.run(until=20.0)
        assert got == [(1.0, "a")]

    def test_immediate_add_wins_over_pending_timer(self, kernel):
        queue = WorkQueue(kernel)
        got = drain(kernel, queue, 1)
        queue.add_after("a", 4.0)
        queue.add("a")
        kernel.run(until=10.0)
        assert [key for _t, key in got] == ["a"]
        assert got[0][0] == 0.0

    def test_requeue_backoff_is_exponential_and_capped(self, kernel):
        queue = WorkQueue(kernel, backoff_base=0.1, backoff_max=0.5)
        delays = [queue.requeue("a") for _ in range(5)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_forget_resets_backoff(self, kernel):
        queue = WorkQueue(kernel, backoff_base=0.1, backoff_max=5.0)
        queue.requeue("a")
        queue.requeue("a")
        queue.forget("a")
        assert queue.requeue("a") == 0.1


class TestWorkQueueClose:
    def test_close_fails_pending_getters(self, kernel):
        queue = WorkQueue(kernel)
        outcome = []

        def getter():
            try:
                yield queue.get()
            except ChannelClosed:
                outcome.append("closed")

        kernel.spawn(getter())
        kernel.run(until=0.1)
        queue.close()
        kernel.run(until=0.2)
        assert outcome == ["closed"]

    def test_add_and_timers_ignored_after_close(self, kernel):
        queue = WorkQueue(kernel)
        queue.add_after("a", 1.0)
        queue.close()
        queue.add("b")
        kernel.run(until=2.0)
        assert len(queue) == 0


class TestReconciler:
    def test_static_keys_reconcile_at_start_and_resync(self, kernel):
        seen = []
        reconciler = Reconciler(kernel, "t", lambda key: seen.append((kernel.now, key)),
                                resync_interval=1.0)
        reconciler.add_static_key("x")
        reconciler.start()
        kernel.run(until=2.5)
        reconciler.stop()
        assert [t for t, _k in seen] == [0.0, 1.0, 2.0]

    def test_watch_events_enqueue_keys(self, kernel):
        channel = Channel(kernel)
        seen = []
        reconciler = Reconciler(kernel, "t", lambda key: seen.append(key))
        reconciler.watch_channel("src", subscribe=lambda: channel,
                                 keys_of=lambda event: [event])
        reconciler.start()
        kernel.run(until=0.1)
        channel.put("a")
        channel.put("b")
        kernel.run(until=0.2)
        reconciler.stop()
        assert seen == ["a", "b"]

    def test_delayed_keys_coalesce_progress_events(self, kernel):
        channel = Channel(kernel)
        seen = []
        reconciler = Reconciler(kernel, "t", lambda key: seen.append((kernel.now, key)))
        reconciler.watch_channel("src", subscribe=lambda: channel,
                                 keys_of=lambda event: [(event, 1.0)])
        reconciler.start()
        kernel.run(until=0.1)
        for _ in range(5):
            channel.put("a")  # a burst of progress events
        kernel.run(until=5.0)
        reconciler.stop()
        assert seen == [(1.1, "a")]  # burst at t=0.1, one pass 1s later

    def test_failed_reconcile_requeues_with_backoff(self, kernel):
        attempts = []

        def reconcile(key):
            attempts.append(kernel.now)
            if len(attempts) < 3:
                raise RuntimeError("transient")

        reconciler = Reconciler(kernel, "t", reconcile)
        reconciler.queue.backoff_base = 1.0
        reconciler.add_static_key("x")
        reconciler.start()
        kernel.run(until=10.0)
        reconciler.stop()
        assert attempts == [0.0, 1.0, 3.0]  # +1s, then +2s

    def test_closed_channel_triggers_rewatch_and_relist(self, kernel):
        channels = []
        seen = []

        def subscribe():
            channel = Channel(kernel)
            channels.append(channel)
            return channel

        reconciler = Reconciler(kernel, "t", lambda key: seen.append(key),
                                rewatch_delay=0.5)
        reconciler.watch_channel("src", subscribe=subscribe,
                                 keys_of=lambda event: [event],
                                 list_keys=lambda: ["relisted"])
        reconciler.start()
        kernel.run(until=0.1)
        channels[0].close()  # the serving node crashed
        kernel.run(until=1.0)
        reconciler.stop()
        assert len(channels) == 2
        assert reconciler.rewatches == 1
        # One relist at first subscribe, one after re-establishment.
        assert seen == ["relisted", "relisted"]

    def test_generator_reconcile_and_list_keys(self, kernel):
        seen = []

        def reconcile(key):
            yield kernel.sleep(0.1)
            seen.append((kernel.now, key))

        def list_keys():
            yield kernel.sleep(0.0)
            return ["g"]

        reconciler = Reconciler(kernel, "t", reconcile)
        reconciler.add_source(WatchSource("gen", list_keys=list_keys))
        reconciler.start()
        kernel.run(until=1.0)
        reconciler.stop()
        assert seen == [(0.1, "g")]

    def test_stop_kills_worker_and_closes_queue(self, kernel):
        reconciler = Reconciler(kernel, "t", lambda key: None,
                                resync_interval=1.0)
        reconciler.add_static_key("x")
        reconciler.start()
        kernel.run(until=0.5)
        reconciler.stop()
        assert reconciler.queue.closed
        kernel.run(until=5.0)  # no residual activity
        assert reconciler.resyncs == 0
