"""Unit tests for causal spans: creation, propagation, analysis."""

import pytest

from repro.sim import (
    Kernel,
    NULL_SPAN,
    SpanContext,
    Tracer,
    extract_context,
    inject_context,
    render_critical_path,
    render_span_tree,
)


@pytest.fixture
def kernel():
    return Kernel(seed=1)


@pytest.fixture
def tracer(kernel):
    return Tracer(kernel)


class TestSpanLifecycle:
    def test_root_span_starts_fresh_trace(self, tracer):
        a = tracer.start_span("a")
        b = tracer.start_span("b")
        assert a.trace_id != b.trace_id
        assert a.parent_id is None

    def test_child_spans_share_trace(self, tracer):
        root = tracer.start_span("root")
        child = tracer.start_span("child", parent=root)
        grandchild = tracer.start_span("grandchild", parent=child.context)
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        assert grandchild.trace_id == root.trace_id
        assert grandchild.parent_id == child.span_id

    def test_end_is_idempotent(self, kernel, tracer):
        span = tracer.start_span("s")

        def proc():
            yield kernel.sleep(2.0)
            span.end("ok")
            yield kernel.sleep(2.0)
            span.end("error")  # ignored: first end wins

        kernel.spawn(proc())
        kernel.run()
        assert span.end_time == 2.0
        assert span.status == "ok"
        assert span.duration() == 2.0

    def test_open_span_duration_tracks_clock(self, kernel, tracer):
        span = tracer.start_span("s")

        def proc():
            yield kernel.sleep(5.0)

        kernel.spawn(proc())
        kernel.run()
        assert not span.ended
        assert span.duration() == 5.0

    def test_context_manager_records_error(self, tracer):
        with pytest.raises(RuntimeError):
            with tracer.start_span("s") as span:
                raise RuntimeError("boom")
        assert span.status == "error"
        with tracer.start_span("t") as span:
            pass
        assert span.status == "ok"

    def test_attributes(self, tracer):
        span = tracer.start_span("s", component="api", job="j-1")
        span.set_attribute("code", 200)
        assert span.attributes == {"job": "j-1", "code": 200}
        assert tracer.find_spans(job="j-1") == [span]


class TestDisabledTracing:
    def test_null_span_when_disabled(self, kernel):
        tracer = Tracer(kernel, span_tracing=False)
        span = tracer.start_span("s", parent=None)
        assert span is NULL_SPAN
        assert not span  # falsy: "did we collect?" checks stay cheap
        # The full Span surface is a no-op, so call sites need no guards.
        span.set_attribute("k", "v").end("error")
        assert span.context is None
        assert span.duration() == 0.0
        assert tracer.spans == []

    def test_null_span_as_parent_roots_fresh_trace(self, tracer):
        span = tracer.start_span("s", parent=NULL_SPAN)
        assert span.parent_id is None


class TestContextPropagation:
    def test_inject_extract_roundtrip(self, tracer):
        span = tracer.start_span("s")
        request = {"job_id": "j-1"}
        carried = inject_context(request, span.context)
        assert "__trace_ctx__" not in request  # original untouched
        assert extract_context(carried) == span.context

    def test_inject_none_passthrough(self):
        request = {"a": 1}
        assert inject_context(request, None) is request
        assert extract_context({"a": 1}) is None
        assert extract_context("not-a-dict") is None

    def test_wire_form_survives_serialization(self):
        ctx = SpanContext(7, 13)
        assert SpanContext.from_wire(ctx.to_wire()) == ctx
        assert SpanContext.from_wire(None) is None

    def test_bindings(self, tracer):
        span = tracer.start_span("s")
        tracer.bind(("job", "j-1"), span.context)
        assert tracer.context_of(("job", "j-1")) == span.context
        tracer.unbind(("job", "j-1"))
        assert tracer.context_of(("job", "j-1")) is None
        tracer.bind(("job", "j-2"), None)  # no-op
        assert tracer.context_of(("job", "j-2")) is None


class TestSpanAnalysis:
    def build_trace(self, kernel, tracer):
        """root(0..10) -> deploy(1..3), monitor(3..10) -> train(4..9)."""
        spans = {}

        def proc():
            spans["root"] = tracer.start_span("root")
            yield kernel.sleep(1.0)
            spans["deploy"] = tracer.start_span("deploy", parent=spans["root"])
            yield kernel.sleep(2.0)
            spans["deploy"].end()
            spans["monitor"] = tracer.start_span("monitor", parent=spans["root"])
            yield kernel.sleep(1.0)
            spans["train"] = tracer.start_span("train", parent=spans["monitor"])
            yield kernel.sleep(5.0)
            spans["train"].end()
            yield kernel.sleep(1.0)
            spans["monitor"].end()
            spans["root"].end()

        kernel.spawn(proc())
        kernel.run()
        return spans

    def test_span_tree(self, kernel, tracer):
        spans = self.build_trace(kernel, tracer)
        roots, children = tracer.span_tree(spans["root"].trace_id)
        assert roots == [spans["root"]]
        assert children[spans["root"].span_id] == [spans["deploy"],
                                                   spans["monitor"]]
        assert children[spans["monitor"].span_id] == [spans["train"]]

    def test_orphan_spans_become_roots(self, tracer):
        orphan = tracer.start_span("child-of-missing",
                                   parent=SpanContext(42, 999))
        roots, _children = tracer.span_tree(42)
        assert roots == [orphan]

    def test_critical_path_attribution(self, kernel, tracer):
        spans = self.build_trace(kernel, tracer)
        steps = tracer.critical_path(spans["root"].trace_id)
        names = [step["span"].name for step in steps]
        assert names == ["root", "monitor", "train"]
        by_name = {step["span"].name: step["self_seconds"] for step in steps}
        # root: 3s before monitor starts (+0 tail); monitor: 1s before
        # train + 1s after; train: its full 5s.
        assert by_name["root"] == pytest.approx(3.0)
        assert by_name["monitor"] == pytest.approx(2.0)
        assert by_name["train"] == pytest.approx(5.0)
        total = sum(by_name.values())
        assert total == pytest.approx(spans["root"].duration())

    def test_critical_path_empty_trace(self, tracer):
        assert tracer.critical_path(123) == []

    def test_renderers(self, kernel, tracer):
        spans = self.build_trace(kernel, tracer)
        trace_id = spans["root"].trace_id
        tree_text = render_span_tree(tracer, trace_id)
        lines = tree_text.splitlines()
        assert len(lines) == 4
        assert "root" in lines[0]
        # Children render indented under their parents.
        assert lines[1].index("deploy") > lines[0].index("root")
        path_text = render_critical_path(tracer, trace_id)
        assert "critical path" in path_text
        assert "train" in path_text
        assert render_critical_path(tracer, 999) == "no spans in trace"

    def test_trace_ids_and_order(self, kernel, tracer):
        spans = self.build_trace(kernel, tracer)
        trace_id = spans["root"].trace_id
        assert trace_id in tracer.trace_ids()
        ordered = tracer.trace_of(trace_id)
        assert [s.name for s in ordered] == ["root", "deploy", "monitor",
                                             "train"]
