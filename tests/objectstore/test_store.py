"""Unit tests for the object store."""

import pytest

from repro.objectstore import (
    AccessDenied,
    BucketExists,
    NoSuchBucket,
    NoSuchKey,
    ObjectStore,
    UploadNotFound,
    create_multipart_upload,
)
from repro.sim import Kernel

CREDS = {"access_key": "AK", "secret": "SK"}
BAD_CREDS = {"access_key": "AK", "secret": "wrong"}


@pytest.fixture
def kernel():
    return Kernel(seed=0)


@pytest.fixture
def store(kernel):
    store = ObjectStore(kernel, link_bandwidth=100, request_latency=0.0)
    store.create_bucket("training-data", CREDS)
    return store


def run(kernel, gen):
    return kernel.run_until_complete(kernel.spawn(gen))


class TestBuckets:
    def test_create_and_list(self, store):
        assert store.bucket_names() == ["training-data"]

    def test_duplicate_bucket(self, store):
        with pytest.raises(BucketExists):
            store.create_bucket("training-data", CREDS)

    def test_missing_bucket(self, store):
        with pytest.raises(NoSuchBucket):
            store.head_object("ghost", "k", CREDS)

    def test_delete_bucket_requires_credentials(self, store):
        with pytest.raises(AccessDenied):
            store.delete_bucket("training-data", BAD_CREDS)
        store.delete_bucket("training-data", CREDS)
        assert store.bucket_names() == []


class TestObjects:
    def test_put_head(self, store):
        store.put_object("training-data", "imagenet/shard-0", CREDS, size=1000)
        obj = store.head_object("training-data", "imagenet/shard-0", CREDS)
        assert obj.size == 1000

    def test_credentials_enforced(self, store):
        store.put_object("training-data", "k", CREDS, size=1)
        with pytest.raises(AccessDenied):
            store.head_object("training-data", "k", BAD_CREDS)

    def test_missing_key(self, store):
        with pytest.raises(NoSuchKey):
            store.head_object("training-data", "ghost", CREDS)

    def test_delete(self, store):
        store.put_object("training-data", "k", CREDS, size=1)
        store.delete_object("training-data", "k", CREDS)
        with pytest.raises(NoSuchKey):
            store.head_object("training-data", "k", CREDS)

    def test_list_with_prefix(self, store):
        for key in ("ckpt/1", "ckpt/2", "logs/a"):
            store.put_object("training-data", key, CREDS, size=1)
        assert store.list_objects("training-data", CREDS, prefix="ckpt/") == [
            "ckpt/1",
            "ckpt/2",
        ]

    def test_etags_unique(self, store):
        a = store.put_object("training-data", "a", CREDS, size=1)
        b = store.put_object("training-data", "b", CREDS, size=1)
        assert a.etag != b.etag


class TestTransfers:
    def test_download_takes_size_over_bandwidth(self, kernel, store):
        store.put_object("training-data", "k", CREDS, size=500)

        def scenario():
            yield from store.download("training-data", "k", CREDS)
            return kernel.now

        # bandwidth 100 B/s, 500 B -> 5 s
        assert run(kernel, scenario()) == pytest.approx(5.0)
        assert store.bytes_downloaded == 500

    def test_upload_accounts_bytes(self, kernel, store):
        def scenario():
            yield from store.upload("training-data", "out", CREDS, size=300)

        run(kernel, scenario())
        assert store.bytes_uploaded == 300
        assert store.head_object("training-data", "out", CREDS).size == 300

    def test_request_latency_added(self, kernel):
        store = ObjectStore(kernel, link_bandwidth=100, request_latency=1.0)
        store.create_bucket("b", CREDS)

        def scenario():
            yield from store.upload("b", "k", CREDS, size=100)
            return kernel.now

        assert run(kernel, scenario()) == pytest.approx(2.0)

    def test_explicit_bandwidth_override(self, kernel, store):
        store.put_object("training-data", "k", CREDS, size=1000)

        def scenario():
            yield from store.download("training-data", "k", CREDS, bandwidth=1000)
            return kernel.now

        assert run(kernel, scenario()) == pytest.approx(1.0)


class TestMultipart:
    def test_parts_assemble(self, kernel, store):
        upload = create_multipart_upload(store, "training-data", "model.tar", CREDS)

        def scenario():
            yield from upload.upload_part(1, size=100)
            yield from upload.upload_part(2, size=200)
            return upload.complete()

        obj = run(kernel, scenario())
        assert obj.size == 300
        assert store.head_object("training-data", "model.tar", CREDS).size == 300

    def test_abort_discards(self, kernel, store):
        upload = create_multipart_upload(store, "training-data", "model.tar", CREDS)

        def scenario():
            yield from upload.upload_part(1, size=100)
            upload.abort()

        run(kernel, scenario())
        with pytest.raises(NoSuchKey):
            store.head_object("training-data", "model.tar", CREDS)
        with pytest.raises(UploadNotFound):
            upload.complete()

    def test_multipart_requires_credentials(self, store):
        with pytest.raises(AccessDenied):
            create_multipart_upload(store, "training-data", "k", BAD_CREDS)
