"""Property-based tests for Raft structures and a randomized
crash-schedule safety check on the full cluster ("Jepsen-lite")."""

from hypothesis import given, settings, strategies as st

from repro.grpcnet import LatencyModel, Network
from repro.raftkv import EtcdClient, EtcdCluster, KvStateMachine, LogEntry, RaftLog
from repro.sim import Kernel

entry_lists = st.lists(
    st.tuples(st.integers(1, 5), st.integers(0, 9)).map(
        lambda pair: LogEntry(term=pair[0], command={"v": pair[1]})
    ),
    max_size=8,
)


class TestLogProperties:
    @given(entry_lists)
    def test_splice_from_empty_installs_everything(self, entries):
        log = RaftLog()
        log.splice(0, entries)
        assert log.last_index == len(entries)
        for index, entry in enumerate(entries, start=1):
            assert log.entry_at(index) == entry

    @given(entry_lists)
    def test_splice_idempotent(self, entries):
        log = RaftLog()
        log.splice(0, entries)
        first = [log.entry_at(i) for i in range(1, log.last_index + 1)]
        log.splice(0, entries)
        second = [log.entry_at(i) for i in range(1, log.last_index + 1)]
        assert first == second

    @given(entry_lists, entry_lists)
    def test_up_to_date_is_total_order(self, a_entries, b_entries):
        a, b = RaftLog(), RaftLog()
        a.splice(0, a_entries)
        b.splice(0, b_entries)
        a_current = a.is_up_to_date(b.last_index, b.last_term)
        b_current = b.is_up_to_date(a.last_index, a.last_term)
        assert a_current or b_current  # at least one side is up to date


commands = st.one_of(
    st.builds(lambda k, v: {"op": "put", "key": k, "value": v},
              st.sampled_from("abcd"), st.integers(0, 9)),
    st.builds(lambda k: {"op": "delete", "key": k}, st.sampled_from("abcd")),
    st.builds(lambda k, e, v: {"op": "cas", "key": k, "expected": e, "value": v},
              st.sampled_from("abcd"), st.integers(0, 9), st.integers(0, 9)),
)


class TestStateMachineProperties:
    @given(st.lists(commands, max_size=30))
    def test_replicas_replaying_same_commands_agree(self, command_list):
        first, second = KvStateMachine(), KvStateMachine()
        for command in command_list:
            first.apply(dict(command))
            second.apply(dict(command))
        assert first.data == second.data
        assert first.revision == second.revision

    @given(st.lists(commands, max_size=30))
    def test_revision_never_decreases(self, command_list):
        sm = KvStateMachine()
        last = 0
        for command in command_list:
            sm.apply(dict(command))
            assert sm.revision >= last
            last = sm.revision

    @given(st.lists(st.tuples(st.integers(1, 5), commands), max_size=20))
    def test_session_dedup_under_arbitrary_retries(self, numbered):
        """Replaying any prefix of a client's commands (stale retries)
        never changes the outcome."""
        reference = KvStateMachine()
        replayed = KvStateMachine()
        tagged = []
        for seq, (_tag, command) in enumerate(numbered, start=1):
            cmd = dict(command)
            cmd["client_id"] = "c"
            cmd["seq"] = seq
            tagged.append(cmd)
        for cmd in tagged:
            reference.apply(dict(cmd))
        for index, cmd in enumerate(tagged):
            replayed.apply(dict(cmd))
            # Retry a random earlier command (deterministically: the first).
            if index:
                replayed.apply(dict(tagged[0]))
        assert reference.data == replayed.data


class TestClusterSafety:
    """Randomized crash schedules must never violate log consistency or
    lose acknowledged writes."""

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        crashes=st.lists(
            st.tuples(st.floats(0.5, 10.0), st.integers(0, 2), st.floats(0.5, 3.0)),
            max_size=3,
        ),
    )
    def test_acknowledged_writes_survive_crash_schedules(self, seed, crashes):
        kernel = Kernel(seed=seed)
        network = Network(kernel, latency=LatencyModel(0.002, 0.002))
        cluster = EtcdCluster(kernel, network, size=3).start()
        client = EtcdClient(kernel, network, cluster)
        acknowledged = []

        for at, victim, downtime in crashes:
            node_id = cluster.node_ids[victim]

            def schedule(node_id=node_id, downtime=downtime):
                cluster.crash(node_id)
                yield kernel.sleep(downtime)
                cluster.restart(node_id)

            def delayed(at=at, gen=schedule):
                yield kernel.sleep(at)
                yield kernel.spawn(gen())

            kernel.spawn(delayed())

        def writer():
            yield from cluster.wait_for_leader(timeout=30)
            for i in range(15):
                yield from client.put(f"key-{i % 4}", i)
                acknowledged.append((f"key-{i % 4}", i))
                yield kernel.sleep(0.8)

        kernel.run_until_complete(kernel.spawn(writer()), limit=200)
        kernel.run(until=kernel.now + 10.0)  # settle: elections, catch-up

        assert cluster.logs_consistent()
        # The final acknowledged value of each key is what a quorum holds.
        final = {}
        for key, value in acknowledged:
            final[key] = value
        leader = cluster.leader()
        assert leader is not None
        for key, value in final.items():
            assert leader.state_machine.get(key) == value
