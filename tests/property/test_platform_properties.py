"""Property-based tests: scheduler invariants, filesystem model,
performance-model monotonicity, lifecycle aggregation."""

from hypothesis import given, settings, strategies as st

from repro.cluster import (
    ContainerSpec,
    KubernetesCluster,
    Pod,
    PodSpec,
    RESTART_NEVER,
)
from repro.core import (
    COMPLETED,
    DOWNLOADING,
    FAILED,
    HALTED,
    PROCESSING,
    aggregate_learner_statuses,
)
from repro.frameworks import (
    BARE_METAL,
    DLAAS,
    K80,
    PCIE3,
    TENSORFLOW,
    WorkloadConfig,
    get_model,
    images_per_sec,
    step_time,
)
from repro.nfs import NfsServer, SharedFilesystem
from repro.sim import Kernel


class TestSchedulerProperties:
    @settings(max_examples=25)
    @given(
        node_gpus=st.lists(st.integers(0, 8), min_size=1, max_size=4),
        pod_gpus=st.lists(st.integers(0, 8), min_size=0, max_size=10),
    )
    def test_allocations_never_exceed_capacity(self, node_gpus, pod_gpus):
        kernel = Kernel(seed=1)
        cluster = KubernetesCluster(kernel, NfsServer(kernel))
        cluster.registry.register("img", 10)
        for i, gpus in enumerate(node_gpus):
            cluster.add_node(f"n{i}", gpus=gpus, gpu_type="k80")
        for i, gpus in enumerate(pod_gpus):
            spec = PodSpec(
                containers=[ContainerSpec("c", "img", gpus=gpus)],
                restart_policy=RESTART_NEVER,
                gpu_type="k80" if gpus else None,
            )
            cluster.api.create(Pod(f"p{i}", spec))
        cluster.scheduler.schedule_once()
        for node in cluster.api.list("Node", namespace=""):
            assert 0 <= node.allocated_gpus <= node.capacity.gpus
        # Every bound pod's node could actually fit it at bind time.
        bound = [p for p in cluster.api.list("Pod") if p.node_name is not None]
        total_bound = sum(p.spec.total_gpus for p in bound)
        total_alloc = sum(n.allocated_gpus
                          for n in cluster.api.list("Node", namespace=""))
        assert total_bound == total_alloc

    @settings(max_examples=25)
    @given(pod_gpus=st.lists(st.integers(1, 4), min_size=1, max_size=8))
    def test_scheduling_is_work_conserving(self, pod_gpus):
        # If any node could fit a pending pod, the pod must be bound.
        kernel = Kernel(seed=1)
        cluster = KubernetesCluster(kernel, NfsServer(kernel))
        cluster.registry.register("img", 10)
        cluster.add_node("n0", gpus=8, gpu_type="k80")
        for i, gpus in enumerate(pod_gpus):
            spec = PodSpec(
                containers=[ContainerSpec("c", "img", gpus=gpus)],
                restart_policy=RESTART_NEVER, gpu_type="k80",
            )
            cluster.api.create(Pod(f"p{i}", spec))
        cluster.scheduler.schedule_once()
        node = cluster.api.list("Node", namespace="")[0]
        pending = [p for p in cluster.api.list("Pod") if p.node_name is None]
        for pod in pending:
            assert pod.spec.total_gpus > node.free_gpus


fs_ops = st.lists(
    st.tuples(
        st.sampled_from(["write", "append", "delete"]),
        st.sampled_from(["/a", "/b", "/d/x", "/d/y"]),
        st.text(alphabet="xyz\n", max_size=5),
    ),
    max_size=25,
)


class TestFilesystemModel:
    @settings(max_examples=40)
    @given(fs_ops)
    def test_matches_dict_model(self, ops):
        fs = SharedFilesystem()
        model = {}
        for op, path, payload in ops:
            if op == "write":
                fs.write_file(path, payload)
                model[path] = payload
            elif op == "append":
                fs.write_file(path, payload, append=True)
                model[path] = model.get(path, "") + payload
            elif op == "delete":
                if path in model:
                    fs.delete(path)
                    del model[path]
        for path, content in model.items():
            assert fs.read_file(path) == content
        for path in ("/a", "/b", "/d/x", "/d/y"):
            assert fs.exists(path) == (path in model)


class TestPerfModelProperties:
    model_names = st.sampled_from(["vgg16", "resnet50", "inceptionv3"])

    @given(model_names, st.integers(1, 4))
    def test_dlaas_never_faster_than_bare_metal(self, model_name, gpus):
        config = WorkloadConfig(model=get_model(model_name), framework=TENSORFLOW,
                                gpu=K80, gpus_per_learner=gpus, intra_node=PCIE3)
        assert images_per_sec(config, DLAAS) < images_per_sec(config, BARE_METAL)

    @given(model_names, st.integers(1, 3))
    def test_more_gpus_more_throughput(self, model_name, gpus):
        model = get_model(model_name)
        small = WorkloadConfig(model=model, framework=TENSORFLOW, gpu=K80,
                               gpus_per_learner=gpus, intra_node=PCIE3)
        large = WorkloadConfig(model=model, framework=TENSORFLOW, gpu=K80,
                               gpus_per_learner=gpus + 1, intra_node=PCIE3)
        assert images_per_sec(large, BARE_METAL) > images_per_sec(small, BARE_METAL)

    @given(model_names, st.integers(8, 128))
    def test_step_time_positive_and_finite(self, model_name, batch):
        config = WorkloadConfig(model=get_model(model_name), framework=TENSORFLOW,
                                gpu=K80, batch_per_gpu=batch)
        seconds = step_time(config, DLAAS)
        assert 0 < seconds < 3600


class TestAggregationProperties:
    statuses = st.sampled_from([DOWNLOADING, PROCESSING, COMPLETED, FAILED, HALTED])

    @given(st.lists(statuses, min_size=1, max_size=8))
    def test_aggregate_is_order_insensitive(self, learner_statuses):
        assert aggregate_learner_statuses(learner_statuses) == \
            aggregate_learner_statuses(list(reversed(learner_statuses)))

    @given(st.lists(statuses, min_size=1, max_size=8))
    def test_failed_dominates(self, learner_statuses):
        assert aggregate_learner_statuses(learner_statuses + [FAILED]) == FAILED

    @given(st.lists(statuses, min_size=1, max_size=8))
    def test_aggregate_never_exceeds_fastest_learner(self, learner_statuses):
        rank = {DOWNLOADING: 0, PROCESSING: 1, COMPLETED: 2, FAILED: 2, HALTED: 2}
        aggregate = aggregate_learner_statuses(learner_statuses)
        if aggregate in (FAILED, HALTED):
            return
        assert rank[aggregate] <= max(rank[s] for s in learner_statuses)
