"""The sharded kernel's central property: execution-count invariance.

The merged timeline of a partitioned bench scenario must be identical
— digest for digest — whether the cells run interleaved on one worker,
spread over several OS processes, or on the inline executor; and the
property must survive chaos (component crashes injected inside the
cells) because dependability scenarios are exactly where the sharded
runner will be pointed.

Everything here is module-level so forked workers can rebuild cells
from their pickled specs.
"""

from repro.bench import bench_manifest, build_sharded_bench
from repro.bench.platform_runner import CREDENTIALS
from repro.core import ComponentCrasher, PlatformConfig, ShardedPlatform

SCENARIO = {"jobs": 4, "seed": 11, "steps": 10, "gpus_per_node": 4,
            "gpu_nodes": 8}


def _chaos_actor(cell, crasher, job_ids, mtbf, stop):
    kernel = cell.platform.kernel
    rng = kernel.rng("shard-chaos")
    kinds = ("learner-pod", "guardian", "api")
    while not stop.triggered:
        yield kernel.sleep(rng.expovariate(1.0 / mtbf))
        if stop.triggered:
            return
        kind = rng.choice(kinds)
        try:
            if kind == "learner-pod":
                crasher.crash_learner(rng.choice(job_ids))
            elif kind == "guardian":
                crasher.crash_guardian(rng.choice(job_ids))
            else:
                crasher.crash_api()
        except Exception:
            continue  # target absent right now; the monkey moves on


def chaos_cell_driver(cell, jobs, steps, mtbf):
    """Bench cell driver plus a per-cell chaos monkey."""
    platform = cell.platform
    platform.seed_training_data("bench-data", CREDENTIALS, size_mb=200)
    platform.ensure_results_bucket("bench-results", CREDENTIALS)
    client = platform.client("chaos")
    crasher = ComponentCrasher(platform)
    cell.start_heartbeats(7.0)
    ids = []
    for i in range(jobs):
        manifest = bench_manifest("resnet50", "tensorflow", 1, "k80",
                                  steps=steps)
        manifest["name"] = f"chaos-{i}"
        manifest["checkpoint_interval"] = 20.0
        ids.append((yield from client.submit(manifest)))
    stop = platform.kernel.event()
    platform.kernel.spawn(_chaos_actor(cell, crasher, ids, mtbf, stop),
                          name=f"cell-{cell.cell_id}-chaos")
    docs = []
    for job_id in ids:
        docs.append((yield from client.wait_for_status(job_id,
                                                       timeout=100_000)))
    if not stop.triggered:
        stop.succeed()
    cell.docs = docs
    if cell.num_cells > 1:
        yield from cell.broadcast(
            "announce",
            {"cell": cell.cell_id, "jobs": [d["job_id"] for d in docs]})


def build_chaos_sharded(cells, jobs_per_cell=2, mtbf=40.0):
    config = PlatformConfig(
        gpu_nodes=4, gpus_per_node=4, gpu_type="k80", management_nodes=2,
        shards=cells)
    return ShardedPlatform(config, seed=23, driver=chaos_cell_driver,
                           driver_args=(jobs_per_cell, 30, mtbf),
                           settle=30.0)


def test_digest_invariant_across_worker_counts():
    runs = {}
    for label, kwargs in (
        ("inline", {"executor": "inline"}),
        ("w1", {"executor": "process", "workers": 1}),
        ("w2", {"executor": "process", "workers": 2}),
        ("w4", {"executor": "process", "workers": 4}),
    ):
        runs[label] = build_sharded_bench(SCENARIO, cells=4).run(**kwargs)
    digests = {label: run.digest for label, run in runs.items()}
    assert len(set(digests.values())) == 1, digests
    reference = runs["inline"]
    for run in runs.values():
        assert run.results == reference.results
        assert run.stats == reference.stats
    assert all(r["completed"] == r["jobs"] for r in reference.results)
    assert reference.stats["messages_routed"] > 0  # not trivially parallel


def test_chaos_soak_digest_invariant_and_no_job_lost():
    sequential = build_chaos_sharded(cells=2).run(executor="process",
                                                  workers=1)
    parallel = build_chaos_sharded(cells=2).run(executor="process",
                                                workers=2)
    assert sequential.digest == parallel.digest
    assert sequential.results == parallel.results
    # the dependability claim survives sharding: every job completes
    for result in sequential.results:
        assert result["completed"] == result["jobs"], result
        assert result["driver_failed"] is None
