"""Hypothesis settings for the property suite.

Simulated components do a fair amount of work per example; relax the
wall-clock health checks and cap example counts so the suite stays fast
and deterministic in CI.
"""

from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")
