"""Property-based tests for the document store."""

from hypothesis import given, settings, strategies as st

from repro.docstore import Collection, apply_update, matches
from repro.docstore.query import get_path, _MISSING

field_names = st.sampled_from(["a", "b", "c", "status", "n"])
scalars = st.one_of(st.integers(-100, 100), st.text(max_size=8), st.booleans(),
                    st.none())
documents = st.dictionaries(field_names, scalars, max_size=5)


class TestQueryProperties:
    @given(documents)
    def test_empty_query_matches_everything(self, doc):
        assert matches(doc, {})

    @given(documents)
    def test_document_matches_its_own_fields(self, doc):
        assert matches(doc, dict(doc))

    @given(documents, field_names, scalars)
    def test_eq_operator_agrees_with_implicit(self, doc, field, value):
        assert matches(doc, {field: value}) == matches(doc, {field: {"$eq": value}})

    @given(documents, field_names, scalars)
    def test_ne_is_negation_of_eq(self, doc, field, value):
        assert matches(doc, {field: {"$ne": value}}) != \
            matches(doc, {field: {"$eq": value}})

    @given(documents, field_names, st.integers(-100, 100))
    def test_gt_and_lte_partition(self, doc, field, bound):
        value = get_path(doc, field)
        if isinstance(value, bool) or not isinstance(value, int):
            return
        gt = matches(doc, {field: {"$gt": bound}})
        lte = matches(doc, {field: {"$lte": bound}})
        assert gt != lte

    @given(documents, field_names, scalars)
    def test_in_singleton_equals_eq(self, doc, field, value):
        assert matches(doc, {field: {"$in": [value]}}) == \
            matches(doc, {field: {"$eq": value}})

    @given(documents, st.lists(st.dictionaries(field_names, scalars, max_size=2),
                               min_size=1, max_size=3))
    def test_or_is_any_and_nor_is_none(self, doc, subqueries):
        individual = [matches(doc, q) for q in subqueries]
        assert matches(doc, {"$or": subqueries}) == any(individual)
        assert matches(doc, {"$nor": subqueries}) == (not any(individual))
        assert matches(doc, {"$and": subqueries}) == all(individual)


class TestUpdateProperties:
    @given(documents, field_names, scalars)
    def test_set_then_get(self, doc, field, value):
        updated = apply_update(doc, {"$set": {field: value}})
        assert updated[field] == value

    @given(documents, field_names, scalars)
    def test_set_does_not_mutate_original(self, doc, field, value):
        snapshot = dict(doc)
        apply_update(doc, {"$set": {field: value}})
        assert doc == snapshot

    @given(documents, field_names)
    def test_unset_removes(self, doc, field):
        updated = apply_update(doc, {"$unset": {field: ""}})
        assert field not in updated

    @given(documents, field_names, st.integers(-50, 50), st.integers(-50, 50))
    def test_inc_composes(self, doc, field, first, second):
        if field in doc and not isinstance(doc[field], int) or \
                isinstance(doc.get(field), bool):
            doc = dict(doc)
            doc.pop(field, None)
        once = apply_update(apply_update(doc, {"$inc": {field: first}}),
                            {"$inc": {field: second}})
        both = apply_update(doc, {"$inc": {field: first + second}})
        assert once[field] == both[field]

    @given(documents, field_names, st.lists(scalars, max_size=4))
    def test_push_appends_in_order(self, doc, field, values):
        doc = dict(doc)
        doc.pop(field, None)
        current = doc
        for value in values:
            current = apply_update(current, {"$push": {field: value}})
        assert current.get(field, []) == values

    @given(st.lists(scalars, min_size=1, max_size=5), field_names)
    def test_addtoset_idempotent(self, values, field):
        doc = {}
        for value in values:
            doc = apply_update(doc, {"$addToSet": {field: value}})
            doc = apply_update(doc, {"$addToSet": {field: value}})
        deduped = []
        for value in values:
            if value not in deduped:
                deduped.append(value)
        assert doc[field] == deduped


class TestCollectionProperties:
    @settings(max_examples=30)
    @given(st.lists(documents, max_size=12))
    def test_count_equals_len_find(self, docs):
        coll = Collection("t")
        for doc in docs:
            coll.insert_one(doc)
        assert coll.count_documents({}) == len(coll.find({})) == len(docs)

    @settings(max_examples=30)
    @given(st.lists(st.dictionaries(st.just("n"), st.integers(0, 20), min_size=1),
                    max_size=12))
    def test_sort_really_sorts(self, docs):
        coll = Collection("t")
        for doc in docs:
            coll.insert_one(doc)
        values = [d["n"] for d in coll.find({}, sort=[("n", 1)])]
        assert values == sorted(values)

    @settings(max_examples=30)
    @given(st.lists(documents, max_size=10), field_names, scalars)
    def test_delete_many_removes_exactly_matches(self, docs, field, value):
        coll = Collection("t")
        for doc in docs:
            coll.insert_one(doc)
        expected = coll.count_documents({field: value})
        deleted = coll.delete_many({field: value})
        assert deleted == expected
        assert coll.count_documents({field: value}) == 0
        assert len(coll) == len(docs) - deleted


class TestAggregationProperties:
    @settings(max_examples=30)
    @given(st.lists(st.fixed_dictionaries({
        "tenant": st.sampled_from(["a", "b", "c"]),
        "seconds": st.integers(0, 1000),
    }), max_size=20))
    def test_group_sum_matches_manual(self, docs):
        from repro.docstore import aggregate

        out = aggregate(docs, [
            {"$group": {"_id": "$tenant", "total": {"$sum": "$seconds"}}},
        ])
        manual = {}
        for doc in docs:
            manual[doc["tenant"]] = manual.get(doc["tenant"], 0) + doc["seconds"]
        assert {row["_id"]: row["total"] for row in out} == manual

    @settings(max_examples=30)
    @given(st.lists(st.fixed_dictionaries({
        "n": st.integers(-50, 50),
    }), max_size=20))
    def test_match_then_count_matches_filter(self, docs):
        from repro.docstore import aggregate

        out = aggregate(docs, [
            {"$match": {"n": {"$gte": 0}}},
            {"$group": {"_id": None, "count": {"$count": 1}}},
        ])
        expected = sum(1 for doc in docs if doc["n"] >= 0)
        if expected == 0:
            assert out == []
        else:
            assert out[0]["count"] == expected

    @settings(max_examples=30)
    @given(st.lists(st.fixed_dictionaries({
        "v": st.integers(-100, 100),
    }), min_size=1, max_size=20))
    def test_sort_limit_agree_with_python(self, docs):
        from repro.docstore import aggregate

        out = aggregate(docs, [{"$sort": {"v": 1}}, {"$limit": 3}])
        expected = sorted(doc["v"] for doc in docs)[:3]
        assert [row["v"] for row in out] == expected
