"""API-surface features: log fallback, metrics, rate limiting, usage."""

import pytest

from repro.core import RateLimited, layout

from .conftest import make_platform, manifest


class TestLogsFallback:
    def test_logs_served_from_object_store_after_volume_gone(self, platform, client):
        job_id, _doc = platform.run_process(
            client.run_to_completion(manifest()), limit=10_000
        )
        # Simulate volume reclamation after teardown: the NFS volume is
        # deleted, so logs must come from the archived object-store copy.
        volume_name = f"pv-default-{layout.pvc_name(job_id)}"
        platform.nfs.delete_volume(volume_name)

        def tail():
            return (yield from client.logs(job_id, tail=3))

        lines = platform.run_process(tail(), limit=600)
        assert any("exiting with code 0" in line for line in lines)

    def test_logs_empty_for_job_without_output_yet(self, platform, client):
        def scenario():
            job_id = yield from client.submit(manifest(target_steps=5000))
            lines = yield from client.logs(job_id)
            return lines

        lines = platform.run_process(scenario(), limit=600)
        assert lines == []


class TestJobMetrics:
    def test_completed_job_reports_throughput(self, platform, client):
        def scenario():
            job_id, _doc = yield from client.run_to_completion(manifest())
            yield platform.kernel.sleep(5.0)  # metrics written at finish
            doc = yield from client.status(job_id)
            return doc

        doc = platform.run_process(scenario(), limit=50_000)
        metrics = doc["metrics"]
        assert metrics is not None
        assert metrics["images_per_sec"] > 0
        assert metrics["processing_seconds"] > 0
        assert metrics["gpu_seconds"] > metrics["processing_seconds"] * 0.5

    def test_running_job_has_no_metrics_yet(self, platform, client):
        def scenario():
            job_id = yield from client.submit(manifest(target_steps=5000))
            yield from client.wait_for_status(job_id, statuses={"PROCESSING"},
                                              timeout=2000)
            doc = yield from client.status(job_id)
            return doc

        doc = platform.run_process(scenario(), limit=10_000)
        assert doc["metrics"] is None


class TestRateLimiting:
    def test_burst_beyond_budget_rejected(self):
        platform = make_platform(api_rate_limit=5.0, api_rate_burst=10.0)
        client = platform.client("greedy")

        def hammer():
            for _ in range(40):
                yield from client.list_jobs()

        with pytest.raises(RateLimited):
            platform.run_process(hammer(), limit=600)

    def test_budget_refills(self):
        platform = make_platform(api_rate_limit=5.0, api_rate_burst=10.0)
        client = platform.client("patient")

        def paced():
            for _ in range(20):
                yield from client.list_jobs()
                yield platform.kernel.sleep(1.0)  # under 5 req/s
            return True

        assert platform.run_process(paced(), limit=600)


class TestUsageReport:
    def test_usage_accumulates_by_method(self, platform, client):
        def scenario():
            yield from client.submit(manifest(target_steps=20))
            yield from client.list_jobs()
            yield from client.list_jobs()
            return (yield from client.usage())

        report = platform.run_process(scenario(), limit=600)
        assert report["api_calls"]["submit"] == 1
        assert report["api_calls"]["list_jobs"] == 2
        assert report["jobs_submitted"] == 1
        assert report["gpus_requested"] == 1


class TestWatchJob:
    def test_callback_fires_per_status_change(self, platform, client):
        observed = []

        def scenario():
            job_id = yield from client.submit(manifest(target_steps=40))
            doc = yield from client.watch_job(
                job_id, lambda d: observed.append(d["status"]),
                poll_interval=1.0, timeout=5000,
            )
            return doc

        doc = platform.run_process(scenario(), limit=50_000)
        assert doc["status"] == "COMPLETED"
        assert observed[-1] == "COMPLETED"
        assert observed == sorted(set(observed), key=observed.index)  # distinct
        assert "PROCESSING" in observed
