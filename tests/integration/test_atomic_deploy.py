"""Atomic job deployment tests (paper §III.d).

Deployment is multi-step; the Guardian makes it atomic: a crash
mid-deployment triggers rollback of the partial deployment and a fresh
attempt, and persistent failures eventually mark the job FAILED —
"either the whole job is provisioned with the requisite resources or
none".
"""

from repro.core import layout

from .conftest import make_platform, manifest, wait_terminal


def crashy_manifest(crash_after_steps, crash_on_attempt=1, **overrides):
    return manifest(
        extra={"guardian_crash_after": crash_after_steps,
               "guardian_crash_on_attempt": crash_on_attempt},
        **overrides,
    )


class TestRollbackAndRetry:
    def test_crash_mid_deploy_still_completes(self):
        platform = make_platform()
        client = platform.client("team-a")

        def submit():
            return (yield from client.submit(crashy_manifest(2, target_steps=80)))

        job_id = platform.run_process(submit(), limit=600)
        doc = wait_terminal(platform, client, job_id)
        assert doc["status"] == "COMPLETED"

    def test_partial_resources_rolled_back(self):
        platform = make_platform()
        client = platform.client("team-a")

        def submit():
            # Crash after the helper step (3 of 4): PVC + netpol +
            # helper exist, learners do not.
            return (yield from client.submit(crashy_manifest(3, target_steps=80)))

        job_id = platform.run_process(submit(), limit=600)
        doc = wait_terminal(platform, client, job_id)
        assert doc["status"] == "COMPLETED"
        # Exactly one learner StatefulSet existed at completion-time;
        # the rolled-back attempt left no duplicates.
        events = [e for e in platform.k8s.api.events
                  if e.reason == "PodCreated" and "helper" in e.message]
        # Two helper deployments were created over the two attempts,
        # but never concurrently: at most one helper pod alive at once.
        assert len(events) >= 2

    def test_attempt_counter_in_etcd(self):
        platform = make_platform()
        client = platform.client("team-a")

        def submit():
            return (yield from client.submit(crashy_manifest(1, target_steps=60)))

        job_id = platform.run_process(submit(), limit=600)
        wait_terminal(platform, client, job_id)
        # After completion the guardian cleans its keys.
        leader = platform.etcd.leader()
        assert leader.state_machine.range(layout.guardian_prefix(job_id)) == []


class TestPersistentFailure:
    def test_exhausted_attempts_mark_job_failed(self):
        # Make EVERY deployment attempt crash: the Guardian must give
        # up after max_deploy_attempts and mark the job FAILED.
        platform = make_platform(max_deploy_attempts=2)
        client = platform.client("team-a")
        from repro.core import guardian as guardian_module

        original = guardian_module.Guardian._deploy

        def always_crash_deploy(self):
            yield from original(self)
            raise RuntimeError("injected: deployment never succeeds")

        guardian_module.Guardian._deploy = always_crash_deploy
        try:
            def submit():
                return (yield from client.submit(manifest(target_steps=60)))

            job_id = platform.run_process(submit(), limit=600)
            doc = wait_terminal(platform, client, job_id, timeout=5000)
        finally:
            guardian_module.Guardian._deploy = original
        assert doc["status"] == "FAILED"
        # No leaked resources or GPU allocations.
        platform.run_for(30.0)
        assert platform.k8s.capacity_summary()["gpus_allocated"] == 0

    def test_failed_deployment_leaves_no_k8s_resources(self):
        platform = make_platform(max_deploy_attempts=1)
        client = platform.client("team-a")
        from repro.core import guardian as guardian_module

        original = guardian_module.Guardian._deploy

        def always_crash_deploy(self):
            yield from original(self)
            raise RuntimeError("injected: deployment never succeeds")

        guardian_module.Guardian._deploy = always_crash_deploy
        try:
            def submit():
                return (yield from client.submit(manifest(target_steps=60)))

            job_id = platform.run_process(submit(), limit=600)
            doc = wait_terminal(platform, client, job_id, timeout=5000)
        finally:
            guardian_module.Guardian._deploy = original
        assert doc["status"] == "FAILED"
        platform.run_for(30.0)
        k8s = platform.k8s.api
        assert not k8s.exists("StatefulSet", layout.learner_set_name(job_id))
        assert not k8s.exists("Deployment", layout.helper_deployment_name(job_id))
        assert not k8s.exists("PersistentVolumeClaim", layout.pvc_name(job_id))


class TestSecondAttemptCrash:
    def test_crash_on_retry_also_recovers(self):
        platform = make_platform()
        client = platform.client("team-a")

        def submit():
            spec = manifest(target_steps=80)
            spec["extra"] = {"guardian_crash_after": 4,
                             "guardian_crash_on_attempt": 2}
            # Crash attempt 1 too, at a different point.
            return (yield from client.submit(spec))

        job_id = platform.run_process(submit(), limit=600)
        doc = wait_terminal(platform, client, job_id, timeout=6000)
        assert doc["status"] == "COMPLETED"
