"""End-to-end consistency audit: the flight recorder + online auditor
over a live platform, the nemesis soak staying linearizable, and the
seeded stale-read bug turning the whole pipeline red."""

import pytest

from repro.audit import check_history
from repro.audit.nemesis import NemesisSoak, seeded_stale_read_scenario

from .conftest import make_platform

AUDIT = dict(history_recording=True, audit_interval=1.0,
             scrape_interval=0.25, alert_eval_interval=0.25,
             event_flush_interval=1.0)


def audit_platform(seed=7, **overrides):
    return make_platform(seed=seed, **{**AUDIT, **overrides})


class TestWiring:
    def test_recording_off_by_default(self):
        platform = make_platform()
        assert platform.history is None
        assert platform.monitoring.auditor is None
        rules = [r.name for r in platform.monitoring.engine.rules]
        assert "ConsistencyViolation" not in rules

    def test_recording_on_wires_recorder_auditor_and_rule(self):
        platform = audit_platform()
        assert platform.history is not None
        auditor = platform.monitoring.auditor
        assert auditor is not None
        assert auditor.interval == 1.0
        rules = [r.name for r in platform.monitoring.engine.rules]
        assert "ConsistencyViolation" in rules

    def test_platform_control_plane_traffic_is_linearizable(self):
        platform = audit_platform()
        client = platform.client("team-a")
        from .conftest import manifest, submit_and_wait_running
        job_id = submit_and_wait_running(platform, client, manifest())
        platform.run_for(5.0)
        assert job_id
        assert len(platform.history) > 0
        auditor = platform.monitoring.auditor
        assert auditor.passes > 0
        assert auditor.ops_checked > 0
        assert auditor.ok, auditor.render_violations()
        # The from-scratch checker agrees with the online auditor.
        assert check_history(platform.history).ok


class TestNemesisSoak:
    def test_short_soak_is_linearizable(self):
        platform = audit_platform(seed=19)
        soak = NemesisSoak(platform, clients=3, keys=4, duration=12.0)
        out = soak.run()
        assert out["ops_issued"] > 50
        assert out["faults_injected"]
        assert out["history"]["ok"] > 0
        assert out["ok"], platform.monitoring.auditor.render_violations()
        store = platform.monitoring.store
        checked = store.get("consistency_ops_checked_total")
        assert checked is not None and checked.latest_value() > 0
        assert store.get("consistency_violations_total",
                         {"key": "/audit/k0"}) is None


class TestSeededBug:
    @pytest.fixture(scope="class")
    def outcome(self):
        platform = audit_platform(seed=5)
        for node_id in platform.etcd.node_ids:
            platform.etcd.node(node_id).stale_reads = True
        observed, outcome = seeded_stale_read_scenario(platform)
        platform.run_for(3 * AUDIT["audit_interval"])
        return platform, observed, outcome

    def test_checker_fails_with_witness(self, outcome):
        _platform, observed, result = outcome
        assert observed == "v1"  # the stale value the deposed leader served
        assert not result.ok
        assert result.witness["key"] == "/audit/seeded"

    def test_auditor_latches_the_violation(self, outcome):
        platform, _observed, _result = outcome
        auditor = platform.monitoring.auditor
        assert not auditor.ok
        assert "linearizability violation" in auditor.render_violations()

    def test_alert_fires_and_event_emitted(self, outcome):
        platform, _observed, _result = outcome
        engine = platform.monitoring.engine
        transitions = engine.transitions("ConsistencyViolation")
        assert any(to == "firing" for _from, to in transitions)
        warnings = platform.events.warnings(reason="ConsistencyViolation")
        assert warnings
        assert warnings[0].kind == "EtcdKey"
        assert warnings[0].name == "/audit/seeded"

    def test_violation_counter_scraped(self, outcome):
        platform, _observed, _result = outcome
        series = platform.monitoring.store.get(
            "consistency_violations_total", {"key": "/audit/seeded"})
        assert series is not None
        assert series.latest_value() >= 1.0

    def test_lease_prevents_the_same_scenario(self):
        # Identical scenario, stale_reads left at the default: the
        # read lease forces the deposed leader out of the read path,
        # the client re-routes, and the history stays linearizable.
        platform = audit_platform(seed=5)
        observed, outcome = seeded_stale_read_scenario(platform)
        platform.run_for(3 * AUDIT["audit_interval"])
        assert observed == "v2"  # the *current* value, not the stale one
        assert outcome.ok
        assert platform.monitoring.auditor.ok
