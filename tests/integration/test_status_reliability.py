"""Reliable status updates (paper §III.f).

The pipeline is learner files on NFS -> controller -> ETCD -> Guardian
-> MongoDB -> user. These tests verify the properties the paper claims:
statuses are timely, monotone, survive crashes of every stage, and the
timestamps users rely on for profiling are consistent.
"""

from repro.core import ComponentCrasher, layout

from .conftest import manifest, submit_and_wait_running, wait_terminal


def status_history(platform, client, job_id):
    def read():
        doc = yield from client.status(job_id)
        return doc

    return platform.run_process(read(), limit=600)


RANK = {s: i for i, s in enumerate(
    ["QUEUED", "DEPLOYING", "DOWNLOADING", "PROCESSING", "STORING",
     "COMPLETED", "FAILED", "HALTED"]
)}


def assert_history_sane(history):
    times = [h["time"] for h in history]
    assert times == sorted(times), f"timestamps not monotone: {history}"
    statuses = [h["status"] for h in history]
    assert statuses[0] == "QUEUED"
    assert len(statuses) == len(set(zip(statuses, times))), "duplicate entries"
    # Only legal backward move is re-deployment after rollback.
    for a, b in zip(statuses, statuses[1:]):
        if RANK[b] < RANK[a]:
            assert b == "DEPLOYING", f"illegal backward move {a}->{b}"


class TestStatusPipeline:
    def test_full_history_has_sane_timestamps(self, platform, client):
        job_id, doc = platform.run_process(
            client.run_to_completion(manifest()), limit=10_000
        )
        assert_history_sane(doc["status_history"])

    def test_status_latency_is_bounded(self, platform, client):
        # A learner that starts PROCESSING should be visible as such to
        # the user within a few poll/monitor cycles.
        job_id = submit_and_wait_running(platform, client, manifest(target_steps=2000))
        ready = platform.tracer.query(component="learner-0", kind="component-ready",
                                      job=job_id)
        first_processing = next(
            r for r in platform.tracer.query(component="guardian",
                                             kind="status-update")
            if r.fields["status"] == "PROCESSING" and r.fields["job"] == job_id
        )
        lag = first_processing.time - ready[0].time
        # controller poll (0.5) + etcd commit + monitor interval (1.0).
        assert 0 <= lag < 5.0

    def test_history_sane_across_guardian_crash(self, platform, client):
        job_id = submit_and_wait_running(platform, client, manifest(target_steps=200))
        ComponentCrasher(platform).crash_guardian(job_id)
        doc = wait_terminal(platform, client, job_id)
        assert doc["status"] == "COMPLETED"
        assert_history_sane(doc["status_history"])

    def test_history_sane_across_controller_crash(self, platform, client):
        job_id = submit_and_wait_running(platform, client, manifest(target_steps=200))
        ComponentCrasher(platform).crash_controller_container(job_id)
        doc = wait_terminal(platform, client, job_id)
        assert doc["status"] == "COMPLETED"
        assert_history_sane(doc["status_history"])

    def test_history_sane_across_etcd_leader_crash(self, platform, client):
        job_id = submit_and_wait_running(platform, client, manifest(target_steps=200))
        platform.etcd.crash_leader()
        doc = wait_terminal(platform, client, job_id)
        assert doc["status"] == "COMPLETED"
        assert_history_sane(doc["status_history"])

    def test_learner_step_progress_is_monotone_per_incarnation(self, platform, client):
        job_id = submit_and_wait_running(platform, client, manifest(target_steps=300))
        leader = platform.etcd.leader()
        watch = leader.watch(layout.learner_status_prefix(job_id))
        wait_terminal(platform, client, job_id)
        steps = []
        while len(watch.channel):
            event = watch.channel.get_nowait()
            if event.type == "put" and isinstance(event.value, dict):
                steps.append(event.value.get("step", 0))
        assert steps == sorted(steps)

    def test_etcd_holds_authoritative_learner_state(self, platform, client):
        job_id = submit_and_wait_running(platform, client, manifest(target_steps=5000))
        platform.run_for(40.0)
        leader = platform.etcd.leader()
        kvs = leader.state_machine.range(layout.learner_status_prefix(job_id))
        assert len(kvs) == 1
        _key, report = kvs[0]
        assert report["status"] == "PROCESSING"
        assert report["step"] > 0

    def test_status_survives_simultaneous_controller_and_guardian_crash(
            self, platform, client):
        job_id = submit_and_wait_running(platform, client, manifest(target_steps=300))
        crasher = ComponentCrasher(platform)
        crasher.crash_controller_container(job_id)
        crasher.crash_guardian(job_id)
        doc = wait_terminal(platform, client, job_id)
        assert doc["status"] == "COMPLETED"
        assert_history_sane(doc["status_history"])
