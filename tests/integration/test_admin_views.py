"""Admin views: cross-tenant rollups and kubectl describe/top."""

from .conftest import manifest


class TestAdminReport:
    def test_rollup_spans_tenants(self, platform):
        alice = platform.client("alice")
        bob = platform.client("bob")

        def scenario():
            yield from alice.submit(manifest(name="a1", target_steps=30))
            yield from alice.submit(manifest(name="a2", target_steps=30))
            job = yield from bob.submit(manifest(name="b1", target_steps=30))
            yield from bob.wait_for_status(job, timeout=10_000)
            yield platform.kernel.sleep(5.0)
            return (yield from platform.admin_report())

        report = platform.run_process(scenario(), limit=50_000)
        by_tenant = {row["_id"]: row for row in report["jobs_by_tenant"]}
        assert by_tenant["alice"]["jobs"] == 2
        assert by_tenant["bob"]["jobs"] == 1
        assert "COMPLETED" in by_tenant["bob"]["statuses"]
        usage = {row["_id"]: row for row in report["usage_by_tenant"]}
        assert usage["bob"]["gpu_seconds"] > 0
        assert report["capacity"]["gpus_total"] == 8


class TestKubectlViews:
    def test_describe_pod(self, platform, client):
        def scenario():
            job_id = yield from client.submit(manifest(target_steps=5000))
            yield from client.wait_for_status(job_id, statuses={"PROCESSING"},
                                              timeout=2000)
            return job_id

        job_id = platform.run_process(scenario(), limit=10_000)
        text = platform.k8s.kubectl.describe_pod(f"{job_id}-learner-0")
        assert f"Name:         {job_id}-learner-0" in text
        assert "Phase:        Running" in text
        assert "learner" in text
        assert "Events:" in text

    def test_top_nodes(self, platform, client):
        def scenario():
            job_id = yield from client.submit(manifest(target_steps=5000))
            yield from client.wait_for_status(job_id, statuses={"PROCESSING"},
                                              timeout=2000)

        platform.run_process(scenario(), limit=10_000)
        text = platform.k8s.kubectl.top_nodes()
        assert "NODE" in text
        # One GPU allocated somewhere.
        assert "   1/4" in text
