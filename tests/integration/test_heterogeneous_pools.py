"""Heterogeneous GPU pools: K80 and P100 jobs on one platform."""

from .conftest import CREDS, make_platform, manifest


class TestHeterogeneousPools:
    def make_mixed_platform(self):
        # 2 K80 nodes plus an extra pool of 2 P100 nodes.
        return make_platform(
            gpu_nodes=2, gpus_per_node=4, gpu_type="k80",
            extra_gpu_pools=((2, 2, "p100-pcie"),),
        )

    def test_jobs_land_on_matching_gpu_type(self):
        platform = self.make_mixed_platform()
        client = platform.client("team")

        def scenario():
            k80_job = yield from client.submit(manifest(
                name="on-k80", gpu_type="k80", target_steps=5000))
            p100_job = yield from client.submit(manifest(
                name="on-p100", gpu_type="p100-pcie", target_steps=5000))
            for job in (k80_job, p100_job):
                yield from client.wait_for_status(job, statuses={"PROCESSING"},
                                                  timeout=2000)
            return k80_job, p100_job

        k80_job, p100_job = platform.run_process(scenario(), limit=10_000)
        k80_pod = platform.k8s.kubectl.get_pod(f"{k80_job}-learner-0")
        p100_pod = platform.k8s.kubectl.get_pod(f"{p100_job}-learner-0")
        assert k80_pod.node_name.startswith("gpu-")
        assert p100_pod.node_name.startswith("p100-pcie-")

    def test_p100_trains_faster_than_k80(self):
        platform = self.make_mixed_platform()
        client = platform.client("team")

        def run(gpu_type):
            def scenario():
                job_id, doc = yield from client.run_to_completion(
                    manifest(name=f"race-{gpu_type}", gpu_type=gpu_type,
                             target_steps=100, checkpoint_interval=0.0))
                history = {h["status"]: h["time"] for h in doc["status_history"]}
                return history["STORING"] - history["PROCESSING"]

            return platform.run_process(scenario(), limit=100_000)

        k80_seconds = run("k80")
        p100_seconds = run("p100-pcie")
        assert p100_seconds < k80_seconds / 2  # ~4x sustained TFLOPS gap

    def test_pool_exhaustion_does_not_spill(self):
        # P100 demand beyond the P100 pool queues; it never lands on K80.
        platform = self.make_mixed_platform()
        client = platform.client("team")

        def scenario():
            ids = []
            for i in range(4):  # 4 x 2-GPU jobs vs 4 P100 GPUs
                ids.append((yield from client.submit(manifest(
                    name=f"p100-{i}", gpu_type="p100-pcie",
                    gpus_per_learner=2, target_steps=5000))))
            yield platform.kernel.sleep(40.0)
            return ids

        platform.run_process(scenario(), limit=10_000)
        for pod in platform.k8s.kubectl.get_pods(selector={"role": "learner"}):
            if pod.node_name is not None:
                assert pod.node_name.startswith("p100-pcie-")
