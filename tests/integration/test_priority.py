"""End-to-end priority & preemption: urgent jobs jump the GPU queue."""

from .conftest import make_platform, manifest, wait_terminal


class TestJobPriority:
    def test_urgent_job_preempts_and_victim_recovers(self):
        # One node, 2 GPUs. A low-priority 2-GPU job trains; an urgent
        # job arrives, preempts it, finishes first; the victim resumes
        # from checkpoint and still completes.
        platform = make_platform(gpu_nodes=1, gpus_per_node=2)
        client = platform.client("team")

        def scenario():
            low = yield from client.submit(manifest(
                name="background", gpus_per_learner=2, target_steps=800,
                checkpoint_interval=15.0, priority=10,
            ))
            yield from client.wait_for_status(low, statuses={"PROCESSING"},
                                              timeout=2000)
            yield platform.kernel.sleep(60.0)  # accumulate checkpoints
            urgent = yield from client.submit(manifest(
                name="urgent", gpus_per_learner=2, target_steps=100,
                checkpoint_interval=0.0, priority=90,
            ))
            urgent_doc = yield from client.wait_for_status(urgent, timeout=10_000)
            low_doc_mid = yield from client.status(low)
            low_doc = yield from client.wait_for_status(low, timeout=30_000)
            return urgent_doc, low_doc_mid, low_doc

        urgent_doc, low_doc_mid, low_doc = platform.run_process(
            scenario(), limit=200_000
        )
        assert urgent_doc["status"] == "COMPLETED"
        # The background job was still alive (not FAILED) while preempted...
        assert low_doc_mid["status"] not in ("FAILED", "HALTED")
        # ...and eventually completed too.
        assert low_doc["status"] == "COMPLETED"
        # Preemption actually happened.
        assert platform.k8s.scheduler.preemptions >= 1
        # The victim resumed from a checkpoint, not from scratch.
        resumed = platform.tracer.query(component="learner-0",
                                        kind="component-ready")
        resumed_steps = [r.fields["resumed_step"] for r in resumed
                         if r.fields.get("resumed_step", 0) > 0]
        assert resumed_steps

    def test_equal_priority_jobs_fifo(self):
        platform = make_platform(gpu_nodes=1, gpus_per_node=2)
        client = platform.client("team")

        def scenario():
            first = yield from client.submit(manifest(
                name="first", gpus_per_learner=2, target_steps=120, priority=50))
            second = yield from client.submit(manifest(
                name="second", gpus_per_learner=2, target_steps=120, priority=50))
            doc1 = yield from client.wait_for_status(first, timeout=30_000)
            doc2 = yield from client.wait_for_status(second, timeout=30_000)
            return doc1, doc2

        doc1, doc2 = platform.run_process(scenario(), limit=200_000)
        assert doc1["status"] == doc2["status"] == "COMPLETED"
        assert platform.k8s.scheduler.preemptions == 0
        assert doc1["completed_at"] < doc2["completed_at"]

    def test_invalid_priority_rejected(self):
        from repro.core import InvalidManifest

        platform = make_platform()
        client = platform.client("team")

        def scenario():
            yield from client.submit(manifest(priority=500))

        import pytest

        with pytest.raises(InvalidManifest):
            platform.run_process(scenario(), limit=600)
