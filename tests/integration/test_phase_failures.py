"""Failures injected in specific lifecycle phases.

The dependability suite crashes components mid-PROCESSING; these tests
hit the other phases — data staging, result upload — plus a whole-NFS
outage, verifying the idempotence guards (READY/DONE markers) make
every phase safely restartable.
"""

from repro.core import ComponentCrasher

from .conftest import CREDS, make_platform, manifest, wait_terminal


class TestDownloadPhaseFailures:
    def test_helper_crash_during_download(self):
        platform = make_platform()
        client = platform.client("team")
        spec = manifest(target_steps=60, dataset_size_mb=3000)  # slow staging

        def submit():
            job_id = yield from client.submit(spec)
            yield from client.wait_for_status(job_id, statuses={"DOWNLOADING"},
                                              timeout=2000)
            return job_id

        job_id = platform.run_process(submit(), limit=10_000)
        ComponentCrasher(platform).crash_helper(job_id)
        doc = wait_terminal(platform, client, job_id)
        assert doc["status"] == "COMPLETED"

    def test_learner_crash_while_waiting_for_data(self):
        platform = make_platform()
        client = platform.client("team")
        spec = manifest(target_steps=60, dataset_size_mb=3000)

        def submit():
            job_id = yield from client.submit(spec)
            yield from client.wait_for_status(job_id, statuses={"DOWNLOADING"},
                                              timeout=2000)
            return job_id

        job_id = platform.run_process(submit(), limit=10_000)
        ComponentCrasher(platform).crash_learner(job_id)
        doc = wait_terminal(platform, client, job_id)
        assert doc["status"] == "COMPLETED"


class TestStoringPhaseFailures:
    def test_helper_crash_during_storing(self):
        platform = make_platform()
        client = platform.client("team")
        # VGG checkpoint/model is ~1.1GB: STORING takes ~9s, a fat window.
        spec = manifest(target_steps=40, model="vgg16", framework="caffe",
                        checkpoint_interval=0.0)

        def submit():
            job_id = yield from client.submit(spec)
            yield from client.wait_for_status(job_id, statuses={"STORING"},
                                              timeout=5000)
            return job_id

        job_id = platform.run_process(submit(), limit=20_000)
        ComponentCrasher(platform).crash_helper(job_id)
        doc = wait_terminal(platform, client, job_id)
        assert doc["status"] == "COMPLETED"
        # The model made it to the object store exactly once.
        keys = platform.object_store.list_objects("results", CREDS,
                                                  prefix=job_id)
        assert f"{job_id}/model" in keys

    def test_guardian_crash_during_storing(self):
        platform = make_platform()
        client = platform.client("team")
        spec = manifest(target_steps=40, model="vgg16", framework="caffe",
                        checkpoint_interval=0.0)

        def submit():
            job_id = yield from client.submit(spec)
            yield from client.wait_for_status(job_id, statuses={"STORING"},
                                              timeout=5000)
            return job_id

        job_id = platform.run_process(submit(), limit=20_000)
        ComponentCrasher(platform).crash_guardian(job_id)
        doc = wait_terminal(platform, client, job_id)
        assert doc["status"] == "COMPLETED"


class TestNfsOutage:
    def test_brief_nfs_outage_is_survived(self):
        platform = make_platform()
        client = platform.client("team")
        spec = manifest(target_steps=400, checkpoint_interval=15.0)

        def submit():
            job_id = yield from client.submit(spec)
            yield from client.wait_for_status(job_id, statuses={"PROCESSING"},
                                              timeout=2000)
            return job_id

        job_id = platform.run_process(submit(), limit=10_000)
        platform.nfs.go_down()
        platform.run_for(10.0)
        platform.nfs.come_up()
        doc = wait_terminal(platform, client, job_id, timeout=10_000)
        assert doc["status"] == "COMPLETED"
