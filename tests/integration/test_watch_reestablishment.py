"""Watch re-establishment under crashes (the reconciler runtime's
crash-recovery contract): a watch broken by a server or client crash is
re-registered with a full relist, so the control plane converges on the
same final state it would have reached with no crash at all."""

import pytest

from repro.core import ComponentCrasher, layout

from .conftest import (
    make_platform,
    manifest,
    submit_and_wait_running,
    wait_terminal,
)


@pytest.fixture
def crasher(platform):
    return ComponentCrasher(platform)


class TestEtcdWatchReestablishment:
    def test_job_converges_after_watch_serving_node_crash(
        self, platform, client, crasher
    ):
        # The Guardian's etcd watch is served from the first live node;
        # crashing that node closes the watch channel mid-job. The
        # reconciler must re-register on a surviving member and relist
        # (via its static key), not miss the terminal transition.
        job_id = submit_and_wait_running(platform, client, manifest(target_steps=120))
        serving = platform.etcd.node_ids[0]
        platform.etcd.crash(serving)
        doc = wait_terminal(platform, client, job_id)
        assert doc["status"] == "COMPLETED"
        statuses = [h["status"] for h in doc["status_history"]]
        assert statuses[-1] == "COMPLETED"

    def test_rewatch_is_traced(self, platform, client, crasher):
        job_id = submit_and_wait_running(platform, client, manifest(target_steps=400))
        platform.etcd.crash(platform.etcd.node_ids[0])
        wait_terminal(platform, client, job_id)
        rewatches = platform.tracer.query(
            component=f"reconciler:guardian:{job_id}", kind="watch-lost"
        )
        assert rewatches, "guardian never re-established its etcd watch"

    def test_halt_detected_through_reestablished_watch(self, platform, client):
        # Crash the watch-serving node, then halt: the signal arrives
        # only through the *re-registered* watch (or its resync).
        job_id = submit_and_wait_running(platform, client, manifest(target_steps=5000))
        platform.etcd.crash(platform.etcd.node_ids[0])
        platform.run_for(3.0)

        def halt():
            yield from client.halt(job_id)

        platform.run_process(halt(), limit=600)
        doc = wait_terminal(platform, client, job_id)
        assert doc["status"] == "HALTED"


class TestApiServerWatchHygiene:
    def test_lcm_crash_does_not_leak_job_watches(self, platform, client, crasher):
        api = platform.k8s.api
        submit_and_wait_running(platform, client, manifest(target_steps=400))
        before = api.watcher_count("Job")
        assert before >= 1  # the LCM GC reconciler is watching
        crasher.crash_lcm()
        platform.run_for(20.0)  # restart: old watch cancelled, new one up
        assert api.watcher_count("Job") == before

    def test_gc_still_collects_after_lcm_restart(self, platform, client, crasher):
        job_id = submit_and_wait_running(platform, client, manifest(target_steps=120))
        crasher.crash_lcm()
        wait_terminal(platform, client, job_id)
        platform.run_for(30.0)  # LCM back up; GC relist collects the Job
        assert not platform.k8s.api.exists("Job", layout.guardian_job_name(job_id))

    def test_guardian_waits_leave_no_watches_behind(self, platform, client):
        api = platform.k8s.api
        baseline = api.watcher_count()
        job_id = submit_and_wait_running(platform, client, manifest(target_steps=120))
        wait_terminal(platform, client, job_id)
        platform.run_for(30.0)
        # Guardian rollback/teardown waits and its reconciler are gone.
        assert api.watcher_count() == baseline
