"""End-to-end gang scheduling: distributed jobs on a tight cluster.

A synchronous multi-learner job blocks at MPI wire-up until every
learner is placed. Without gang scheduling, a waiting job's first
learner can grab the GPU a crashed learner's replacement needs,
deadlocking both jobs; gang scheduling refuses partial placement and
both jobs complete.
"""

from repro.core import ComponentCrasher

from .conftest import CREDS, make_platform, manifest


def distributed_manifest(name, steps=120):
    return manifest(name=name, framework="horovod", learners=3,
                    target_steps=steps, checkpoint_interval=15.0)


def start_scenario(gang_scheduling):
    # One node, 4 GPUs: job A (3 learners) fits, job B (3 learners) must wait.
    platform = make_platform(gpu_nodes=1, gpus_per_node=4,
                             gang_scheduling=gang_scheduling)
    client = platform.client("team")

    def submit():
        job_a = yield from client.submit(distributed_manifest("job-a", steps=600))
        yield from client.wait_for_status(job_a, statuses={"PROCESSING"},
                                          timeout=2000)
        job_b = yield from client.submit(distributed_manifest("job-b", steps=120))
        return job_a, job_b

    job_a, job_b = platform.run_process(submit(), limit=10_000)
    platform.run_for(30.0)  # let job B's partial placement (if any) happen
    # Crash one of A's learners: its replacement needs a free GPU.
    ComponentCrasher(platform).crash_learner(job_a, ordinal=1)
    return platform, client, job_a, job_b


class TestGangScheduling:
    def test_without_gang_scheduling_jobs_deadlock(self):
        platform, client, job_a, job_b = start_scenario(gang_scheduling=False)
        platform.run_for(900.0)  # far beyond any legitimate recovery time

        def statuses():
            a = yield from client.status(job_a)
            b = yield from client.status(job_b)
            return a["status"], b["status"]

        status_a, status_b = platform.run_process(statuses(), limit=600)
        # B's first learner holds the 4th GPU at the MPI barrier; A's
        # replacement learner can never place: neither job finishes.
        assert status_a not in ("COMPLETED",)
        assert status_b not in ("COMPLETED",)
        assert platform.k8s.capacity_summary()["gpus_allocated"] == 4

    def test_with_gang_scheduling_both_jobs_complete(self):
        platform, client, job_a, job_b = start_scenario(gang_scheduling=True)

        def wait_both():
            a = yield from client.wait_for_status(job_a, timeout=30_000)
            b = yield from client.wait_for_status(job_b, timeout=30_000)
            return a["status"], b["status"]

        status_a, status_b = platform.run_process(wait_both(), limit=200_000)
        assert status_a == "COMPLETED"
        assert status_b == "COMPLETED"
