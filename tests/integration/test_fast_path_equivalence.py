"""The fast path must be invisible: bit-identical timelines.

``PlatformConfig(sim_fast_path=False)`` reverts every
scheduling-visible optimization of the simulator fast path — timer
cancellation (every timer fires into dead callbacks again), the
docstore query planner (full scans), and copy-on-read elision (deep
copy on every read). Running the same seeded scenario both ways and
comparing the *complete* trace — every tracer record, every job's
status history with timestamps, and the final simulated clock — proves
the optimizations changed only wall-clock time, never the simulation.

The chaos scenario matters most: crashes drive deadline-RPC races
(AnyOf timeout losers), Guardian recovery (the paper's Fig. 4 bands),
and fail-over retries — exactly the machinery the fast path touches.
"""

from repro.core import ComponentCrasher

from .conftest import make_platform, manifest


def full_timeline(platform, docs):
    trace = [(round(r.time, 9), r.component, r.kind)
             for r in platform.tracer.records]
    histories = [
        [(h["status"], round(h["time"], 9)) for h in doc["status_history"]]
        for doc in docs
    ]
    return trace, histories, round(platform.kernel.now, 9)


def run_batch(fast, seed=11, jobs=3):
    platform = make_platform(seed=seed, sim_fast_path=fast)
    client = platform.client("team")

    def scenario():
        ids = []
        for i in range(jobs):
            spec = manifest(target_steps=60)
            spec["name"] = f"eq-{i}"
            ids.append((yield from client.submit(spec)))
        docs = []
        for job_id in ids:
            docs.append((yield from client.wait_for_status(job_id,
                                                           timeout=20_000)))
        return docs

    docs = platform.run_process(scenario(), limit=100_000)
    platform.run_for(20.0)
    return full_timeline(platform, docs), platform


def run_chaos(fast, seed=29):
    """One checkpointing job through a learner crash and a Guardian
    crash — the Fig. 4 recovery bands — plus a batch sibling."""
    platform = make_platform(seed=seed, sim_fast_path=fast)
    client = platform.client("team")

    def submit():
        job_id = yield from client.submit(
            manifest(target_steps=240, checkpoint_interval=15.0))
        yield from client.wait_for_status(job_id, statuses={"PROCESSING"},
                                          timeout=2000)
        return job_id

    job_id = platform.run_process(submit(), limit=10_000)
    crasher = ComponentCrasher(platform)
    crasher.crash_learner(job_id)
    platform.run_for(30.0)
    crasher.crash_guardian(job_id)

    def finish():
        return (yield from client.wait_for_status(job_id, timeout=50_000))

    doc = platform.run_process(finish(), limit=200_000)
    platform.run_for(20.0)
    return full_timeline(platform, [doc]), platform


class TestTimelineEquivalence:
    def test_batch_identical(self):
        fast, fast_platform = run_batch(fast=True)
        slow, slow_platform = run_batch(fast=False)
        assert fast == slow
        # The fast run actually exercised cancellation.
        assert fast_platform.kernel.timers_cancelled > 0
        assert slow_platform.kernel.timers_cancelled == 0

    def test_chaos_recovery_identical(self):
        fast, fast_platform = run_chaos(fast=True)
        slow, _ = run_chaos(fast=False)
        assert fast == slow
        assert fast_platform.kernel.timers_cancelled > 0

    def test_fast_path_is_default(self):
        platform = make_platform()
        assert platform.config.sim_fast_path is True
        assert platform.kernel._timer_cancellation is True


class TestDeadEntryBounds:
    def test_dead_entries_bounded_under_chaos(self):
        """Lazy deletion must not let cancelled timers pile up: every
        cancelled timer is eventually popped (and counted) or still
        pending, and the pending backlog stays small relative to the
        work done."""
        _timeline, platform = run_chaos(fast=True)
        kernel = platform.kernel
        assert kernel.timers_cancelled > 0
        # Conservation: cancelled timers are either already skipped at
        # pop or still waiting in the heap.
        assert (kernel.dead_entries_skipped + kernel.dead_entries_pending
                == kernel.timers_cancelled)
        # The heap backlog of dead entries stays bounded — a small
        # fraction of total events, not an ever-growing tail.
        assert kernel.dead_entries_pending < 0.05 * kernel.events_processed
        assert kernel.dead_entry_ratio < 0.5
