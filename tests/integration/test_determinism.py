"""Whole-platform determinism: one seed, one trace."""

from .conftest import make_platform, manifest


def run_scenario(seed):
    platform = make_platform(seed=seed)
    client = platform.client("team")
    job_id, doc = platform.run_process(
        client.run_to_completion(manifest(target_steps=80)), limit=50_000
    )
    trace = [(round(r.time, 9), r.component, r.kind)
             for r in platform.tracer.records]
    history = [(h["status"], round(h["time"], 9)) for h in doc["status_history"]]
    return job_id, history, trace, platform.kernel.now


class TestDeterminism:
    def test_same_seed_identical_run(self):
        first = run_scenario(seed=123)
        second = run_scenario(seed=123)
        assert first == second

    def test_different_seed_diverges(self):
        first = run_scenario(seed=123)
        second = run_scenario(seed=321)
        # Same outcome (COMPLETED), different micro-timing.
        assert [s for s, _t in first[1]] == [s for s, _t in second[1]]
        assert first[3] != second[3]

    def test_chaos_run_is_reproducible(self):
        from repro.core import ComponentCrasher

        def chaotic(seed):
            platform = make_platform(seed=seed)
            client = platform.client("team")

            def submit():
                job_id = yield from client.submit(
                    manifest(target_steps=300, checkpoint_interval=15.0))
                yield from client.wait_for_status(job_id, statuses={"PROCESSING"},
                                                  timeout=2000)
                return job_id

            job_id = platform.run_process(submit(), limit=10_000)
            crasher = ComponentCrasher(platform)
            crasher.crash_learner(job_id)
            platform.run_for(30.0)
            crasher.crash_guardian(job_id)

            def finish():
                return (yield from client.wait_for_status(job_id, timeout=50_000))

            doc = platform.run_process(finish(), limit=200_000)
            return doc["status"], round(platform.kernel.now, 6)

        assert chaotic(77) == chaotic(77)
