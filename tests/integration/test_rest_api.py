"""REST surface tests: routes, status codes, parity with the GRPC path."""

from repro.core import RestClient

from .conftest import manifest


def rest_client(platform, tenant="rest-team"):
    token = platform.tokens.create_tenant(tenant)
    return RestClient(platform, token)


class TestRestLifecycle:
    def test_submit_poll_complete(self, platform):
        rest = rest_client(platform)

        def scenario():
            response = yield from rest.post("/v1/models", manifest())
            assert response["status"] == 201
            job_id = response["body"]["job_id"]
            while True:
                response = yield from rest.get(f"/v1/models/{job_id}")
                if response["body"]["status"] in ("COMPLETED", "FAILED", "HALTED"):
                    return job_id, response["body"]
                yield platform.kernel.sleep(5.0)

        job_id, body = platform.run_process(scenario(), limit=50_000)
        assert body["status"] == "COMPLETED"
        assert body["job_id"] == job_id

    def test_list_and_logs_routes(self, platform):
        rest = rest_client(platform)

        def scenario():
            response = yield from rest.post("/v1/models", manifest(target_steps=5000))
            job_id = response["body"]["job_id"]
            listing = yield from rest.get("/v1/models")
            yield platform.kernel.sleep(60.0)
            logs = yield from rest.get(f"/v1/models/{job_id}/logs",
                                       query={"tail": 5})
            return listing, logs

        listing, logs = platform.run_process(scenario(), limit=10_000)
        assert listing["status"] == 200
        assert len(listing["body"]) == 1
        assert logs["status"] == 200
        assert isinstance(logs["body"]["lines"], list)

    def test_delete_halts_job(self, platform):
        rest = rest_client(platform)

        def scenario():
            response = yield from rest.post("/v1/models", manifest(target_steps=5000))
            job_id = response["body"]["job_id"]
            yield platform.kernel.sleep(40.0)
            response = yield from rest.delete(f"/v1/models/{job_id}")
            assert response["status"] == 200
            while True:
                response = yield from rest.get(f"/v1/models/{job_id}")
                if response["body"]["status"] in ("COMPLETED", "FAILED", "HALTED"):
                    return response["body"]["status"]
                yield platform.kernel.sleep(2.0)

        assert platform.run_process(scenario(), limit=10_000) == "HALTED"

    def test_usage_route(self, platform):
        rest = rest_client(platform)

        def scenario():
            yield from rest.get("/v1/models")
            response = yield from rest.get("/v1/usage")
            return response

        response = platform.run_process(scenario(), limit=600)
        assert response["status"] == 200
        assert response["body"]["api_calls_total"] >= 1


class TestRestErrors:
    def test_bad_token_is_401(self, platform):
        rest = RestClient(platform, "forged")

        def scenario():
            return (yield from rest.get("/v1/models"))

        assert platform.run_process(scenario(), limit=600)["status"] == 401

    def test_invalid_manifest_is_400(self, platform):
        rest = rest_client(platform)

        def scenario():
            return (yield from rest.post("/v1/models", {"name": "incomplete"}))

        response = platform.run_process(scenario(), limit=600)
        assert response["status"] == 400
        assert "error" in response["body"]

    def test_unknown_job_is_404(self, platform):
        rest = rest_client(platform)

        def scenario():
            return (yield from rest.get("/v1/models/job-99999"))

        assert platform.run_process(scenario(), limit=600)["status"] == 404

    def test_unknown_route_is_404(self, platform):
        rest = rest_client(platform)

        def scenario():
            return (yield from rest.get("/v2/nonsense"))

        assert platform.run_process(scenario(), limit=600)["status"] == 404

    def test_cross_tenant_access_is_404(self, platform):
        alice = rest_client(platform, "alice")
        bob = rest_client(platform, "bob")

        def scenario():
            response = yield from alice.post("/v1/models", manifest())
            job_id = response["body"]["job_id"]
            return (yield from bob.get(f"/v1/models/{job_id}"))

        assert platform.run_process(scenario(), limit=600)["status"] == 404
