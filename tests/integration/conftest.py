"""Shared fixtures for end-to-end platform tests.

A fresh (small, fast) platform per test: 2 GPU nodes, short jobs, tight
checkpoint intervals, so each scenario finishes in well under a second
of wall-clock time.
"""

import pytest

from repro import DlaasPlatform
from repro.core import PlatformConfig

CREDS = {"access_key": "AK", "secret": "SK"}


def make_platform(seed=7, **config_overrides):
    defaults = dict(gpu_nodes=2, gpus_per_node=4, management_nodes=2)
    defaults.update(config_overrides)
    platform = DlaasPlatform(seed=seed, config=PlatformConfig(**defaults))
    platform.start()
    platform.seed_training_data("train-data", CREDS, size_mb=100)
    platform.ensure_results_bucket("results", CREDS)
    return platform


@pytest.fixture
def platform():
    return make_platform()


@pytest.fixture
def client(platform):
    return platform.client("team-a")


def manifest(**overrides):
    base = {
        "name": "test-job",
        "framework": "tensorflow",
        "model": "resnet50",
        "learners": 1,
        "gpus_per_learner": 1,
        "gpu_type": "k80",
        "target_steps": 60,
        "checkpoint_interval": 20.0,
        "dataset_size_mb": 100,
        "data": {"bucket": "train-data", "credentials": CREDS},
        "results": {"bucket": "results", "credentials": CREDS},
    }
    base.update(overrides)
    return base


def submit_and_wait_running(platform, client, manifest_dict, timeout=300.0):
    """Submit a job and advance the clock until it is PROCESSING."""

    def scenario():
        job_id = yield from client.submit(manifest_dict)
        yield from client.wait_for_status(job_id, statuses={"PROCESSING"},
                                          timeout=timeout, poll_interval=1.0)
        return job_id

    return platform.run_process(scenario(), limit=timeout * 2)


def wait_terminal(platform, client, job_id, timeout=3000.0):
    def scenario():
        doc = yield from client.wait_for_status(job_id, timeout=timeout,
                                                poll_interval=2.0)
        return doc

    return platform.run_process(scenario(), limit=timeout * 2)
