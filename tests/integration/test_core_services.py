"""Core-service management: scaling, endpoints, guardian write-ahead."""

from repro.core import layout

from .conftest import make_platform, manifest


class TestApiScaling:
    def test_scale_up_adds_endpoints(self, platform):
        deployment = platform.k8s.api.get("Deployment", "dlaas-api")
        assert len(platform.api_balancer.endpoints) == 2
        deployment.replicas = 4
        platform.run_for(15.0)
        assert len(platform.api_balancer.endpoints) == 4

    def test_scale_down_removes_endpoints(self, platform):
        deployment = platform.k8s.api.get("Deployment", "dlaas-api")
        deployment.replicas = 1
        platform.run_for(15.0)
        assert len(platform.api_balancer.endpoints) == 1

    def test_requests_balanced_across_instances(self, platform, client):
        def hammer():
            for _ in range(20):
                yield from client.list_jobs()

        platform.run_process(hammer(), limit=600)
        # Both API endpoints served traffic.
        served = [
            platform.network.lookup(endpoint).requests_served
            for endpoint in platform.api_balancer.endpoints
        ]
        assert all(count > 0 for count in served)


class TestGuardianWriteAhead:
    def test_intent_recorded_before_resources_exist(self):
        """The write-ahead discipline that makes rollback sound: every
        deployed resource's ETCD marker is written before the resource.
        Verified by watching both stores during a live deployment."""
        platform = make_platform()
        client = platform.client("team")
        leader = platform.etcd.leader()
        watch = leader.watch("guardian/")
        k8s_watch = platform.k8s.api.watch("StatefulSet")

        def scenario():
            job_id = yield from client.submit(manifest(target_steps=30))
            yield from client.wait_for_status(job_id, statuses={"PROCESSING"},
                                              timeout=2000)
            return job_id

        job_id = platform.run_process(scenario(), limit=10_000)

        # Find when the 'learners' marker was committed vs when the
        # StatefulSet resource appeared.
        marker_revision_time = None
        while len(watch.channel):
            event = watch.channel.get_nowait()
            if event.key == layout.guardian_deployed_key(job_id, "learners"):
                marker_revision_time = event.revision
                break
        assert marker_revision_time is not None
        assert len(k8s_watch) >= 1  # the StatefulSet was created after

    def test_rollback_event_trail(self):
        platform = make_platform()
        client = platform.client("team")

        def scenario():
            spec = manifest(target_steps=40)
            spec["extra"] = {"guardian_crash_after": 3,
                             "guardian_crash_on_attempt": 1}
            job_id = yield from client.submit(spec)
            doc = yield from client.wait_for_status(job_id, timeout=20_000)
            return job_id, doc

        job_id, doc = platform.run_process(scenario(), limit=100_000)
        assert doc["status"] == "COMPLETED"
        # Two guardian incarnations: the crashed deployer + the one that
        # rolled back and redeployed.
        ready = platform.tracer.query(component="guardian",
                                      kind="component-ready", job=job_id)
        assert len(ready) == 2
        deploys = platform.tracer.query(component="guardian", kind="deployed",
                                        job=job_id)
        assert [d.fields["attempt"] for d in deploys] == [2]


class TestLcmGc:
    def test_guardian_jobs_garbage_collected(self, platform, client):
        def scenario():
            ids = []
            for i in range(3):
                ids.append((yield from client.submit(
                    manifest(name=f"gc-{i}", target_steps=20))))
            for job_id in ids:
                yield from client.wait_for_status(job_id, timeout=20_000)
            return ids

        ids = platform.run_process(scenario(), limit=100_000)
        platform.run_for(30.0)
        for job_id in ids:
            assert not platform.k8s.api.exists("Job",
                                               layout.guardian_job_name(job_id))
        # No guardian pods linger either.
        leftovers = [p for p in platform.k8s.kubectl.get_pods()
                     if "guardian" in p.metadata.name]
        assert leftovers == []
