"""End-to-end causal tracing and the REST metrics endpoint.

The PR 3 acceptance scenario: one submitted job yields a single
connected span tree rooted at the API request, covering API -> LCM ->
Guardian -> controller -> learner; the critical path attributes its
latency; and the REST gateway serves the Prometheus exposition.
"""

from repro.core.rest import RestClient
from repro.sim import render_critical_path, render_span_tree

from .conftest import manifest, wait_terminal


def run_one_job(platform, client):
    job_id, doc = platform.run_process(
        client.run_to_completion(manifest()), limit=50_000)
    # COMPLETED is written before the Guardian tears down; run on so
    # the teardown/monitor spans close and the trace is complete.
    platform.run_for(30.0)
    return job_id, doc


class TestJobTrace:
    def test_single_connected_span_tree(self, platform, client):
        job_id, doc = run_one_job(platform, client)
        assert doc["status"] == "COMPLETED"
        tracer = platform.tracer

        roots = tracer.find_spans(name="api.submit", job=job_id)
        assert len(roots) == 1
        trace_id = roots[0].trace_id

        # Every pipeline stage contributed a span to the *same* trace.
        for name, component in (("api.submit", "api"),
                                ("lcm.deploy_job", "lcm"),
                                ("guardian.run", "guardian"),
                                ("guardian.deploy", "guardian"),
                                ("guardian.monitor", "guardian"),
                                ("guardian.teardown", "guardian"),
                                ("controller.run", "controller"),
                                ("learner.run", "learner-0")):
            spans = tracer.find_spans(name=name, component=component,
                                      trace_id=trace_id)
            assert spans, f"missing span {name} [{component}]"
            assert all(s.ended for s in spans)

        # Connected: exactly one root; no span dangles off the tree.
        tree_roots, children = tracer.span_tree(trace_id)
        assert tree_roots == roots
        reachable = set()
        frontier = [roots[0]]
        while frontier:
            span = frontier.pop()
            reachable.add(span.span_id)
            frontier.extend(children.get(span.span_id, ()))
        assert reachable == {s.span_id for s in tracer.trace_of(trace_id)}

    def test_critical_path_covers_end_to_end_latency(self, platform, client):
        job_id, _doc = run_one_job(platform, client)
        tracer = platform.tracer
        root = tracer.find_spans(name="api.submit", job=job_id)[0]
        steps = tracer.critical_path(root.trace_id)
        assert steps[0]["span"] is root
        # Self times cover (nearly all of) the interval from submission
        # to the last span's end; small gaps remain where a stage hands
        # off asynchronously (LCM's reply returns before the Guardian
        # pod starts).
        last_end = max(s.end_time for s in tracer.trace_of(root.trace_id))
        elapsed = last_end - root.start
        total = sum(step["self_seconds"] for step in steps)
        assert 0.9 * elapsed < total < 1.01 * elapsed
        # Training dominates a healthy run, so the monitor stage (which
        # contains it) should carry most of the latency.
        by_name = {step["span"].name: step["self_seconds"] for step in steps}
        assert max(by_name, key=by_name.get) in ("guardian.monitor",
                                                 "controller.run",
                                                 "learner.run")

    def test_report_renders(self, platform, client):
        job_id, _doc = run_one_job(platform, client)
        tracer = platform.tracer
        trace_id = tracer.find_spans(name="api.submit", job=job_id)[0].trace_id
        tree = render_span_tree(tracer, trace_id)
        assert "api.submit" in tree and "learner.run" in tree
        path = render_critical_path(tracer, trace_id)
        assert path.startswith("critical path")

    def test_span_tracing_can_be_disabled(self):
        from .conftest import make_platform

        platform = make_platform(span_tracing=False)
        client = platform.client("team-a")
        _job_id, doc = run_one_job(platform, client)
        assert doc["status"] == "COMPLETED"
        assert platform.tracer.spans == []

    def test_halted_job_trace_records_error_status(self, platform, client):
        from .conftest import submit_and_wait_running

        job_id = submit_and_wait_running(platform, client,
                                         manifest(target_steps=5000))
        platform.run_process(client.halt(job_id), limit=10_000)
        doc = wait_terminal(platform, client, job_id)
        assert doc["status"] == "HALTED"
        platform.run_for(30.0)  # let teardown finish
        guardian = platform.tracer.find_spans(name="guardian.run", job=job_id)
        assert guardian and guardian[0].ended


class TestRestMetricsEndpoint:
    def test_exposition_served_unauthenticated(self, platform, client):
        run_one_job(platform, client)
        rest = RestClient(platform, token="")  # no auth needed for scrape
        response = platform.run_process(rest.get("/metrics"), limit=10_000)
        assert response["status"] == 200
        body = response["body"]
        assert isinstance(body, str)
        # Labeled series from all three instrumented layers are present.
        lines = body.splitlines()
        for prefix in ("workqueue_depth{", "workqueue_adds_total{",
                       "workqueue_queue_duration_seconds_bucket{",
                       "workqueue_work_duration_seconds_bucket{",
                       "raft_leader_elections_total{",
                       "raft_commit_duration_seconds_count{",
                       "rpc_client_calls_total{",
                       "rpc_client_duration_seconds_sum{",
                       "scheduler_placement_latency_seconds_count",
                       "nfs_ops_total{", "objectstore_transfer_duration"):
            assert any(line.startswith(prefix) for line in lines), prefix
        assert "# TYPE workqueue_depth gauge" in lines
        assert "# TYPE rpc_client_calls_total counter" in lines

    def test_non_metric_routes_still_work(self, platform, client):
        rest = RestClient(platform, token="")
        response = platform.run_process(rest.get("/nope"), limit=10_000)
        assert response["status"] == 404
