"""End-to-end monitoring: the paper's fault matrix through the full
scrape -> series -> alert -> event pipeline, the non-perturbation
guarantee (bit-identical job timeline with monitoring off), and the
REST operational surface (/healthz, /events, metrics auth).
"""

import pytest

from repro.core import ComponentCrasher
from repro.core.rest import RestClient

from .conftest import (
    make_platform,
    manifest,
    submit_and_wait_running,
    wait_terminal,
)

# Tight monitoring cadence so detection latency, not scrape cadence,
# dominates each scenario's runtime.
FAST = dict(scrape_interval=0.05, alert_eval_interval=0.05,
            event_flush_interval=0.5)


def assert_fault_detected(platform, component, rule, crash_time):
    """The acceptance criteria's three-part check for one injected fault:
    an ``up`` dip in scraped history, the alert walking
    pending -> firing -> resolved, and the Warning/resolution events."""
    series = platform.monitoring.store.get("up", {"component": component})
    assert series is not None, f"no up series for {component}"
    window = series.window(crash_time, platform.kernel.now)
    assert any(v == 0.0 for _, v in window), f"no up dip for {component}"
    assert series.latest_value() == 1.0, f"{component} never recovered"

    transitions = platform.monitoring.engine.transitions(rule)
    for hop in (("inactive", "pending"), ("pending", "firing"),
                ("firing", "resolved")):
        assert hop in transitions, (rule, hop, transitions)

    warnings = platform.events.warnings(reason=rule)
    assert warnings and warnings[0].kind == "Component"
    assert warnings[0].name == component
    assert platform.events.events(reason="AlertResolved", name=component)


def non_leader_etcd_node(platform):
    leader = platform.etcd.leader()
    return next(node_id for node_id in platform.etcd.node_ids
                if node_id != leader.node_id)


class TestFaultMatrix:
    """One test per paper-evaluated crash (Fig. 4 plus an etcd member)."""

    def test_api_pod_crash_detected(self):
        platform = make_platform(**FAST)
        when, pod = ComponentCrasher(platform).crash_api()
        platform.run_for(15.0)
        assert_fault_detected(platform, "api", "ApiDown", when)
        # The dying pod itself reported the crash on the way down.
        assert platform.events.warnings(reason="ComponentCrashed", name=pod)

    def test_lcm_pod_crash_detected(self):
        platform = make_platform(**FAST)
        when, pod = ComponentCrasher(platform).crash_lcm()
        platform.run_for(15.0)
        assert_fault_detected(platform, "lcm", "LcmDown", when)
        assert platform.events.warnings(reason="ComponentCrashed", name=pod)

    def test_guardian_crash_detected(self):
        platform = make_platform(**FAST)
        client = platform.client("team-a")
        job_id = submit_and_wait_running(platform, client,
                                         manifest(target_steps=3000))
        when, _pod = ComponentCrasher(platform).crash_guardian(job_id)
        platform.run_for(12.0)
        assert_fault_detected(platform, "guardian", "GuardianDown", when)

    def test_helper_crash_detected(self):
        platform = make_platform(**FAST)
        client = platform.client("team-a")
        job_id = submit_and_wait_running(platform, client,
                                         manifest(target_steps=3000))
        when, _pod = ComponentCrasher(platform).crash_helper(job_id)
        platform.run_for(12.0)
        assert_fault_detected(platform, "helper", "HelperDown", when)

    def test_learner_crash_detected(self):
        platform = make_platform(**FAST)
        client = platform.client("team-a")
        job_id = submit_and_wait_running(platform, client,
                                         manifest(target_steps=3000))
        when, _pod = ComponentCrasher(platform).crash_learner(job_id)
        platform.run_for(12.0)
        assert_fault_detected(platform, "learner", "LearnerDown", when)

    def test_single_etcd_node_crash_detected(self):
        platform = make_platform(**FAST)
        victim = non_leader_etcd_node(platform)
        when = platform.kernel.now
        platform.etcd.crash(victim)
        platform.run_for(5.0)
        # Quorum holds (the cluster is still live) but readiness is
        # degraded, so the alert fires while the member is down.
        assert platform.monitoring.engine.firing("EtcdDegraded")
        assert platform.health.snapshot()["components"]["etcd"]["status"] \
            == "degraded"
        platform.etcd.restart(victim)
        platform.run_for(8.0)
        assert_fault_detected(platform, "etcd", "EtcdDegraded", when)


class TestMonitoringDoesNotPerturb:
    """Scraping, probing, and alerting must not shift the simulation:
    the job timeline is bit-identical with monitoring on or off."""

    @staticmethod
    def _timeline(monitoring):
        platform = make_platform(monitoring=monitoring)
        client = platform.client("team-a")
        job_id = submit_and_wait_running(platform, client,
                                         manifest(target_steps=120))
        ComponentCrasher(platform).crash_learner(job_id)
        doc = wait_terminal(platform, client, job_id)
        return (doc["status"], doc["status_history"], doc["completed_at"],
                platform.kernel.now)

    def test_job_timeline_bit_identical(self):
        with_monitoring = self._timeline(monitoring=True)
        without_monitoring = self._timeline(monitoring=False)
        assert with_monitoring == without_monitoring
        assert with_monitoring[0] == "COMPLETED"

    def test_monitoring_disabled_skips_stack_not_events(self):
        platform = make_platform(monitoring=False)
        assert platform.monitoring is None
        # The in-memory recorder stays on (it cannot perturb), so the
        # event log is available even without the scrape pipeline.
        assert platform.events.events(reason="ComponentReady")


class TestRestSurface:
    def test_healthz_ok_then_degraded(self):
        platform = make_platform()
        rest = RestClient(platform, token="")
        response = platform.run_process(rest.get("/healthz"), limit=10_000)
        assert response["status"] == 200
        body = response["body"]
        assert body["status"] == "ok"
        for component in ("api", "lcm", "etcd", "mongo", "nfs"):
            assert body["components"][component]["status"] == "ok"

        platform.etcd.crash(non_leader_etcd_node(platform))
        response = platform.run_process(rest.get("/healthz"), limit=10_000)
        assert response["status"] == 503
        assert response["body"]["status"] == "degraded"
        assert response["body"]["components"]["etcd"]["status"] == "degraded"

    def test_events_endpoints_and_tenancy(self):
        platform = make_platform(**FAST)
        client = platform.client("team-a")
        job_id = submit_and_wait_running(platform, client, manifest())
        doc = wait_terminal(platform, client, job_id)
        assert doc["status"] == "COMPLETED"
        platform.run_for(2.0)  # let the flusher persist the tail

        rest = RestClient(platform, client.token)
        response = platform.run_process(rest.get("/events"), limit=10_000)
        assert response["status"] == 200
        reasons = {event["reason"] for event in response["body"]}
        assert {"GuardianCreated", "Deployed", "JobCompleted"} <= reasons
        assert all("event_key" not in event for event in response["body"])

        for path in (f"/jobs/{job_id}/events", f"/v1/models/{job_id}/events"):
            response = platform.run_process(rest.get(path), limit=10_000)
            assert response["status"] == 200
            events = response["body"]
            assert events and all(e["job"] == job_id for e in events)
            assert any(e["reason"] == "JobCompleted" for e in events)

        # Reason filtering on the firehose endpoint.
        response = platform.run_process(
            rest.get("/events", query={"reason": "Deployed"}), limit=10_000)
        assert {e["reason"] for e in response["body"]} == {"Deployed"}

        # Another tenant cannot read this job's events.
        stranger = RestClient(platform, platform.tokens.create_tenant("team-b"))
        response = platform.run_process(
            stranger.get(f"/jobs/{job_id}/events"), limit=10_000)
        assert response["status"] == 404

    def test_metrics_auth_off_by_default(self):
        platform = make_platform()
        rest = RestClient(platform, token="")
        for path in ("/metrics", "/healthz"):
            response = platform.run_process(rest.get(path), limit=10_000)
            assert response["status"] == 200, path
        metrics_response = platform.run_process(rest.get("/metrics"),
                                                limit=10_000)
        assert "platform_events_total" in metrics_response["body"]

    def test_metrics_auth_gates_operational_endpoints(self):
        platform = make_platform(metrics_auth="scrape-secret")
        anonymous = RestClient(platform, token="")
        wrong = RestClient(platform, token="not-it")
        operator = RestClient(platform, token="scrape-secret")
        for path in ("/metrics", "/healthz"):
            for rejected in (anonymous, wrong):
                response = platform.run_process(rejected.get(path),
                                                limit=10_000)
                assert response["status"] == 401, path
            response = platform.run_process(operator.get(path), limit=10_000)
            assert response["status"] == 200, path
        # Tenant routes still use tenant tokens, unaffected by the gate.
        client = platform.client("team-a")
        tenant_rest = RestClient(platform, client.token)
        response = platform.run_process(tenant_rest.get("/v1/models"),
                                        limit=10_000)
        assert response["status"] == 200
