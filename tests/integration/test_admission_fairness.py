"""Fairness regression: an adversarial tenant cannot degrade others.

One tenant offers 10x its concurrent-job quota in a single burst while
two well-behaved tenants submit within quota. Admission control must
(a) hold the adversary to its quota — rejecting or queueing the rest —
and (b) keep the well-behaved tenants' p95 submit→deploy latency inside
the band measured on an identical platform with no adversary at all.
"""

from repro.core.errors import QuotaExceeded

from .conftest import make_platform, manifest

QUOTA = 3
ADVERSARY_BURST = 10 * 2  # 10x the adversary's quota of 2
GOOD_JOBS = 3


def fair_platform():
    return make_platform(
        gpu_nodes=4,  # 16 GPUs: all admitted 1-GPU jobs fit, so any
                      # slowdown is control-plane, not GPU contention
        tenant_quota_jobs=QUOTA,
        admission_queue_limit=4,
        admission_max_wait=2.0,
        tenant_weights={"adversary": 1.0, "good-0": 1.0, "good-1": 1.0},
    )


def submit_and_time(platform, client, name):
    """Submit one job; returns (job_id, submit→PROCESSING latency)."""
    submitted = platform.kernel.now
    job_id = yield from client.submit(manifest(name=name, target_steps=400))
    yield from client.wait_for_status(job_id, statuses={"PROCESSING"},
                                      timeout=600.0, poll_interval=1.0)
    return job_id, platform.kernel.now - submitted


def measure_tenant(platform, tenant, results):
    client = platform.client(tenant)

    def run():
        for i in range(GOOD_JOBS):
            _job_id, latency = yield from submit_and_time(
                platform, client, f"{tenant}-{i}")
            results.setdefault(tenant, []).append(latency)
    return run


def p95(samples):
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(0.95 * len(ordered)))]


def baseline_band():
    """Single well-behaved tenant, empty platform: the latency band."""
    platform = fair_platform()
    results = {}

    def scenario():
        yield from measure_tenant(platform, "good-0", results)()
    platform.run_process(scenario(), limit=500_000)
    return p95(results["good-0"])


class TestAdmissionFairness:
    def test_adversary_cannot_push_good_tenants_out_of_band(self):
        band = baseline_band()

        platform = fair_platform()
        results = {}
        rejections = []
        adversary = platform.client("adversary")

        def adversary_burst():
            for i in range(ADVERSARY_BURST):
                try:
                    yield from adversary.submit(
                        manifest(name=f"adv-{i}", target_steps=2000))
                except QuotaExceeded as exc:
                    rejections.append(exc.reason)

        def scenario():
            platform.kernel.spawn(adversary_burst())
            workers = [
                platform.kernel.spawn(
                    measure_tenant(platform, tenant, results)())
                for tenant in ("good-0", "good-1")
            ]
            for worker in workers:
                yield worker

        platform.run_process(scenario(), limit=500_000)

        # The adversary was actually held back: everything beyond its
        # quota (modulo the bounded queue) bounced with a 429-shaped
        # error, and the platform said so in the event stream.
        assert len(rejections) >= ADVERSARY_BURST - QUOTA - 4 - 2
        assert set(rejections) <= {"quota", "queue_full", "queue_timeout"}
        assert platform.events.events(reason="TenantThrottled")

        # Well-behaved tenants stayed inside the single-tenant band:
        # same GPUs, same control plane, adversary absorbed at admission.
        for tenant in ("good-0", "good-1"):
            contended = p95(results[tenant])
            assert contended <= band * 1.5 + 5.0, (
                f"{tenant} p95 {contended:.2f}s vs band {band:.2f}s")
