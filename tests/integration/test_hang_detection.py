"""Hang detection (extension): stalled learners are found and restarted.

Orderly failures write exit codes (§III.e) and crashes are restarted by
Kubernetes (§III.h) — but a hung learner produces neither signal. The
controller's stall detector + the Guardian's restart close the gap.
"""

from .conftest import make_platform, manifest, wait_terminal


def hang_manifest(**overrides):
    return manifest(
        target_steps=200,
        checkpoint_interval=10.0,
        extra={"hang_at_step": 60},
        **overrides,
    )


class TestHangDetection:
    def test_hung_learner_detected_and_job_completes(self):
        platform = make_platform(stall_timeout=30.0, stall_restart_cooldown=20.0)
        client = platform.client("team")

        def submit():
            return (yield from client.submit(hang_manifest()))

        job_id = platform.run_process(submit(), limit=600)
        doc = wait_terminal(platform, client, job_id, timeout=10_000)
        assert doc["status"] == "COMPLETED"
        restarts = platform.tracer.query(component="guardian",
                                         kind="stall-restart", job=job_id)
        assert len(restarts) >= 1
        assert restarts[0].fields["learner"] == 0
        assert restarts[0].fields["stalled_for"] >= 30.0

    def test_restarted_learner_resumes_from_checkpoint(self):
        platform = make_platform(stall_timeout=30.0, stall_restart_cooldown=20.0)
        client = platform.client("team")

        def submit():
            return (yield from client.submit(hang_manifest()))

        job_id = platform.run_process(submit(), limit=600)
        wait_terminal(platform, client, job_id, timeout=10_000)
        ready = platform.tracer.query(component="learner-0",
                                      kind="component-ready", job=job_id)
        assert len(ready) >= 2
        assert ready[-1].fields["resumed_step"] > 0

    def test_detection_disabled_leaves_job_stuck(self):
        platform = make_platform(stall_timeout=0.0)
        client = platform.client("team")

        def submit():
            return (yield from client.submit(hang_manifest()))

        job_id = platform.run_process(submit(), limit=600)
        platform.run_for(600.0)

        def status():
            return (yield from client.status(job_id))

        doc = platform.run_process(status(), limit=600)
        assert doc["status"] == "PROCESSING"  # hung, and nobody noticed
        assert not platform.tracer.query(component="guardian",
                                         kind="stall-restart")

    def test_healthy_slow_job_not_flagged(self):
        # Checkpoint uploads and slow steps must not trip the detector:
        # VGG-16 on a K80 steps ~1s and uploads ~1.1GB checkpoints, so
        # legitimate gaps between status updates approach 30s; the
        # timeout must sit above that (the platform default is 90s).
        platform = make_platform(stall_timeout=45.0)
        client = platform.client("team")
        spec = manifest(target_steps=120, checkpoint_interval=15.0,
                        model="vgg16", framework="caffe")

        def submit():
            return (yield from client.submit(spec))

        job_id = platform.run_process(submit(), limit=600)
        doc = wait_terminal(platform, client, job_id, timeout=10_000)
        assert doc["status"] == "COMPLETED"
        assert not platform.tracer.query(component="guardian",
                                         kind="stall-restart")
