"""LCM partition crash-failover: lease expiry and slice adoption.

With ``lcm_slices > 0`` each LCM replica claims a lease-guarded slice
of the job-id space. Killing a replica mid-flight must:

* expire its slice leases (no operator involvement),
* have a surviving replica adopt the orphaned slices (``SliceAdopted``),
* complete every in-flight job (reconcile re-drives adopted slices),
* leak zero GPUs once the dust settles.
"""

from repro.core.faults import ComponentCrasher
from repro.core.partitions import SLICE_PREFIX

from .conftest import CREDS, make_platform, manifest

JOBS = 6


def sharded_platform(**overrides):
    defaults = dict(
        gpu_nodes=3,
        lcm_replicas=2,
        lcm_slices=4,
        lcm_lease_ttl=2.0,
        lcm_slice_tick=0.5,
    )
    defaults.update(overrides)
    return make_platform(**defaults)


class TestPartitionCrashFailover:
    def test_survivor_adopts_and_all_jobs_complete(self):
        platform = sharded_platform()
        client = platform.client("team-a")
        crasher = ComponentCrasher(platform)

        def scenario():
            job_ids = []
            for i in range(JOBS):
                job_ids.append((yield from client.submit(
                    manifest(name=f"fo-{i}", target_steps=120))))
            # Let deployments spread across both partitions, then kill
            # one LCM replica while its slice still has live jobs.
            yield platform.kernel.sleep(8.0)
            crasher.crash_lcm()
            docs = []
            for job_id in job_ids:
                docs.append((yield from client.wait_for_status(
                    job_id, timeout=4000.0, poll_interval=2.0)))
            yield platform.kernel.sleep(60.0)  # teardown settles
            return docs

        docs = platform.run_process(scenario(), limit=500_000)

        assert [d["status"] for d in docs] == ["COMPLETED"] * JOBS

        # The orphaned slices were adopted by the survivor, loudly.
        adoptions = platform.events.events(reason="SliceAdopted")
        assert adoptions, "no SliceAdopted event after LCM crash"

        # Zero GPU leakage: everything the crashed partition deployed
        # was torn down by the adopting replica's reconcilers.
        summary = platform.k8s.capacity_summary()
        assert summary["gpus_allocated"] == 0, summary

    def test_all_slices_owned_after_failover(self):
        platform = sharded_platform()
        client = platform.client("team-a")
        crasher = ComponentCrasher(platform)

        def scenario():
            job_id = yield from client.submit(
                manifest(name="fo-single", target_steps=120))
            yield platform.kernel.sleep(8.0)
            crasher.crash_lcm()
            yield from client.wait_for_status(job_id, timeout=4000.0,
                                              poll_interval=2.0)
            # Give the survivor a few ticks beyond the lease TTL, then
            # read slice ownership straight from etcd.
            yield platform.kernel.sleep(10.0)
            from repro.raftkv import EtcdClient
            kv = EtcdClient(platform.kernel, platform.network, platform.etcd,
                            client_id="test-observer")
            pairs = yield from kv.get_range(SLICE_PREFIX)
            return {key: value for key, value in pairs if value is not None}

        owners = platform.run_process(scenario(), limit=500_000)
        slices = platform.config.lcm_slices
        assert len(owners) == slices, owners
        # Every slice is owned by a single live replica (the replacement
        # pod the Deployment re-created also counts once it registers).
        for owner in owners.values():
            assert owner.startswith("lcm:"), owners
