"""Dependability tests: every component crashes, the platform recovers.

These exercise the paper's core claims (§III, §IV): loose coupling —
"a learner can crash and be restarted by K8S independently of the
helper. Guardians can crash/restart independently of the LCM and API,
and so on" — plus checkpoint-bounded lost work and reliable status
updates across crashes.
"""

import pytest

from repro.core import ComponentCrasher

from .conftest import (
    CREDS,
    make_platform,
    manifest,
    submit_and_wait_running,
    wait_terminal,
)


@pytest.fixture
def crasher(platform):
    return ComponentCrasher(platform)


class TestApiCrash:
    def test_requests_survive_api_pod_crash(self, platform, client, crasher):
        job_id = submit_and_wait_running(platform, client, manifest())
        crasher.crash_api()

        def status():
            return (yield from client.status(job_id))

        # The second API replica (or the restarted pod) serves the call.
        doc = platform.run_process(status(), limit=600)
        assert doc["job_id"] == job_id

    def test_api_recovers_within_band(self, platform, client, crasher):
        submit_and_wait_running(platform, client, manifest())
        when, _pod = crasher.crash_api()
        platform.run_for(20.0)
        recovery = crasher.recovery_time("api", when)
        assert recovery is not None
        assert 2.0 < recovery < 7.0

    def test_submission_survives_total_api_outage(self, platform, crasher):
        # Kill ALL API pods; a client submitting retries until a pod
        # returns, and the accepted job is durable.
        client = platform.client("team-a")
        for _ in range(2):
            crasher.crash_api()

        def scenario():
            job_id = yield from client.submit(manifest())
            doc = yield from client.wait_for_status(job_id, timeout=5000)
            return doc

        doc = platform.run_process(scenario(), limit=20_000)
        assert doc["status"] == "COMPLETED"


class TestLcmCrash:
    def test_job_completes_despite_lcm_crash_mid_run(self, platform, client, crasher):
        job_id = submit_and_wait_running(platform, client, manifest())
        crasher.crash_lcm()
        doc = wait_terminal(platform, client, job_id)
        assert doc["status"] == "COMPLETED"

    def test_queued_job_deployed_after_lcm_restart(self, platform, client, crasher):
        # Submit while the LCM is down: the durable QUEUED record is
        # picked up by the restarted LCM's reconcile loop.
        crasher.crash_lcm()

        def submit():
            return (yield from client.submit(manifest()))

        job_id = platform.run_process(submit(), limit=600)
        doc = wait_terminal(platform, client, job_id)
        assert doc["status"] == "COMPLETED"

    def test_lcm_recovers_within_band(self, platform, client, crasher):
        when, _pod = crasher.crash_lcm()
        platform.run_for(20.0)
        recovery = crasher.recovery_time("lcm", when)
        assert recovery is not None
        assert 3.0 < recovery < 8.0


class TestGuardianCrash:
    def test_job_completes_despite_guardian_crash(self, platform, client, crasher):
        job_id = submit_and_wait_running(platform, client, manifest(target_steps=120))
        crasher.crash_guardian(job_id)
        doc = wait_terminal(platform, client, job_id)
        assert doc["status"] == "COMPLETED"

    def test_guardian_recovers_fast(self, platform, client, crasher):
        job_id = submit_and_wait_running(platform, client, manifest(target_steps=5000))
        when, _pod = crasher.crash_guardian(job_id)
        platform.run_for(10.0)
        recovery = crasher.recovery_time("guardian", when, job=job_id)
        assert recovery is not None
        assert 0.5 < recovery < 3.0

    def test_status_updates_resume_after_guardian_crash(self, platform, client, crasher):
        job_id = submit_and_wait_running(platform, client, manifest(target_steps=400))
        crasher.crash_guardian(job_id)
        doc = wait_terminal(platform, client, job_id)
        statuses = [h["status"] for h in doc["status_history"]]
        assert statuses[-1] == "COMPLETED"
        # The restarted guardian rolled the job back through DEPLOYING
        # at most; history never shows an illegal jump.
        assert statuses[0] == "QUEUED"


class TestHelperCrash:
    def test_job_completes_despite_helper_crash(self, platform, client, crasher):
        job_id = submit_and_wait_running(platform, client, manifest(target_steps=150))
        crasher.crash_helper(job_id)
        doc = wait_terminal(platform, client, job_id)
        assert doc["status"] == "COMPLETED"

    def test_controller_restart_reconstructs_from_nfs(self, platform, client, crasher):
        # §III.f: "Using NFS makes status updates resilient to
        # controller crashes; K8S will restart the controller which can
        # read current status and previous statuses from NFS."
        job_id = submit_and_wait_running(platform, client, manifest(target_steps=300))
        when, _pod = crasher.crash_controller_container(job_id)
        platform.run_for(15.0)
        recovery = crasher.recovery_time("controller", when, job=job_id)
        assert recovery is not None

        def status():
            return (yield from client.status(job_id))

        doc = platform.run_process(status(), limit=600)
        assert doc["status"] in ("PROCESSING", "STORING", "COMPLETED")
        doc = wait_terminal(platform, client, job_id)
        assert doc["status"] == "COMPLETED"


class TestLearnerCrash:
    def test_learner_pod_crash_job_still_completes(self, platform, client, crasher):
        job_id = submit_and_wait_running(platform, client, manifest(
            target_steps=300, checkpoint_interval=15.0))
        crasher.crash_learner(job_id)
        doc = wait_terminal(platform, client, job_id)
        assert doc["status"] == "COMPLETED"

    def test_learner_resumes_from_checkpoint(self, platform, client, crasher):
        spec = manifest(target_steps=2000, checkpoint_interval=15.0)
        job_id = submit_and_wait_running(platform, client, spec)
        platform.run_for(60.0)  # accumulate checkpoints
        crasher.crash_learner(job_id)
        platform.run_for(60.0)
        ready = [r for r in platform.tracer.query(component="learner-0",
                                                  kind="component-ready", job=job_id)]
        assert len(ready) >= 2
        # The restart resumed from a checkpoint, not from step zero.
        assert ready[-1].fields["resumed_step"] > 0

    def test_learner_container_crash_restarts_in_place(self, platform, client, crasher):
        spec = manifest(target_steps=2000, checkpoint_interval=15.0)
        job_id = submit_and_wait_running(platform, client, spec)
        platform.run_for(40.0)
        when, name = crasher.crash_learner_container(job_id)
        platform.run_for(40.0)
        pod = platform.k8s.kubectl.get_pod(name)
        assert pod.restart_count >= 1
        assert pod.phase == "Running"

    def test_node_crash_reschedules_learner(self, platform, client, crasher):
        spec = manifest(target_steps=1500, checkpoint_interval=15.0)
        job_id = submit_and_wait_running(platform, client, spec)
        platform.run_for(40.0)
        _when, dead_node = crasher.crash_node_of(job_id)
        doc = wait_terminal(platform, client, job_id, timeout=6000)
        assert doc["status"] == "COMPLETED"
        # And the replacement learner ran somewhere else.
        moved = [r for r in platform.tracer.query(component="learner-0",
                                                  kind="component-ready", job=job_id)]
        assert len(moved) >= 2

    def test_lost_work_bounded_by_checkpoint_interval(self, platform, client, crasher):
        spec = manifest(target_steps=5000, checkpoint_interval=20.0)
        job_id = submit_and_wait_running(platform, client, spec)
        platform.run_for(80.0)
        crasher.crash_learner(job_id)
        platform.run_for(60.0)
        ready = platform.tracer.query(component="learner-0", kind="component-ready",
                                      job=job_id)
        assert len(ready) >= 2
        progress = platform.tracer.query(component="guardian", kind="status-update")
        resumed = ready[-1].fields["resumed_step"]
        # Steps lost = last progress before crash minus resume point;
        # bound it loosely by two checkpoint intervals of stepping.
        from repro.core import layout  # noqa: F401  (documentation import)
        assert resumed > 0


class TestEtcdNodeCrash:
    def test_status_pipeline_survives_etcd_member_crash(self, platform, client):
        job_id = submit_and_wait_running(platform, client, manifest(target_steps=200))
        platform.etcd.crash_leader()
        doc = wait_terminal(platform, client, job_id)
        assert doc["status"] == "COMPLETED"

    def test_mongo_member_crash_survived(self, platform, client):
        job_id = submit_and_wait_running(platform, client, manifest(target_steps=150))
        platform.mongo.member("mongo-0").crash()
        doc = wait_terminal(platform, client, job_id)
        assert doc["status"] == "COMPLETED"


class TestCompoundFailures:
    def test_guardian_and_learner_crash_same_job(self, platform, client, crasher):
        spec = manifest(target_steps=400, checkpoint_interval=15.0)
        job_id = submit_and_wait_running(platform, client, spec)
        crasher.crash_guardian(job_id)
        platform.run_for(5.0)
        crasher.crash_learner(job_id)
        doc = wait_terminal(platform, client, job_id)
        assert doc["status"] == "COMPLETED"

    def test_everything_crashes_once(self, platform, client, crasher):
        spec = manifest(target_steps=600, checkpoint_interval=15.0)
        job_id = submit_and_wait_running(platform, client, spec)
        crasher.crash_api()
        platform.run_for(3.0)
        crasher.crash_lcm()
        platform.run_for(3.0)
        crasher.crash_guardian(job_id)
        platform.run_for(3.0)
        crasher.crash_helper(job_id)
        platform.run_for(3.0)
        crasher.crash_learner(job_id)
        doc = wait_terminal(platform, client, job_id, timeout=8000)
        assert doc["status"] == "COMPLETED"
