"""Cluster monitor tests: utilization sampling and reporting."""

import pytest

from .conftest import manifest


class TestClusterMonitor:
    def test_samples_capture_job_lifecycle(self, platform, client):
        monitor = platform.monitor(interval=5.0)
        platform.run_process(client.run_to_completion(manifest()), limit=50_000)
        platform.run_for(10.0)
        monitor.stop()

        assert monitor.samples
        # At some point a GPU was allocated; at the end none are.
        peaks = [s["gpus_allocated"] for s in monitor.samples]
        assert max(peaks) >= 1
        assert peaks[-1] == 0
        # Job-state series saw the terminal state.
        assert any(s["jobs"].get("COMPLETED") for s in monitor.samples)

    def test_utilization_summary(self, platform, client):
        monitor = platform.monitor(interval=5.0)
        platform.run_process(client.run_to_completion(manifest()), limit=50_000)
        monitor.stop()
        summary = monitor.summary()
        assert summary["samples"] > 3
        assert 0.0 < summary["mean_utilization"] <= 1.0
        assert summary["peak_utilization"] >= summary["mean_utilization"]

    def test_report_renders(self, platform, client):
        monitor = platform.monitor(interval=5.0)
        platform.run_process(client.run_to_completion(manifest()), limit=50_000)
        monitor.stop()
        report = monitor.report()
        assert "GPU utilization" in report
        assert "[" in report and "]" in report

    def test_empty_monitor_reports_gracefully(self, platform):
        monitor = platform.monitor(interval=5.0)
        monitor.stop()
        assert monitor.report() == "no samples"
        assert monitor.summary()["samples"] == 0

    def test_invalid_interval(self, platform):
        from repro.core import ClusterMonitor

        with pytest.raises(ValueError):
            ClusterMonitor(platform, interval=0)

    def test_samples_published_to_registry(self, platform, client):
        monitor = platform.monitor(interval=5.0)
        platform.run_process(client.run_to_completion(manifest()), limit=50_000)
        platform.run_for(10.0)
        monitor.stop()

        metrics = platform.metrics
        assert metrics.get("cluster_gpus_total").value == 8  # 2 nodes x 4
        # The job is done: its GPU freed, the count written back to 0
        # (not stuck at its peak).
        assert metrics.get("cluster_gpus_allocated").value == 0
        assert metrics.get("cluster_nodes").value >= 2
        jobs = metrics.get("cluster_jobs")
        assert jobs.labels(status="COMPLETED").value == 1
        # Gauges reach the exposition the REST endpoint serves.
        assert 'cluster_jobs{status="COMPLETED"} 1' in metrics.expose()

    def test_transient_label_values_reset_to_zero(self, platform):
        from repro.core import ClusterMonitor

        monitor = ClusterMonitor(platform, interval=1.0)
        capacity = {"gpus_total": 8, "gpus_allocated": 2, "nodes": 2}
        monitor._publish(capacity, {"Pending": 2, "Running": 3},
                         {"PROCESSING": 1})
        monitor._publish(capacity, {"Running": 3}, {"COMPLETED": 1})
        # A label value that disappears from a sample reads 0, not its
        # last nonzero count.
        pods = platform.metrics.get("cluster_pods")
        assert pods.labels(phase="Pending").value == 0
        assert pods.labels(phase="Running").value == 3
        jobs = platform.metrics.get("cluster_jobs")
        assert jobs.labels(status="PROCESSING").value == 0
        assert jobs.labels(status="COMPLETED").value == 1
