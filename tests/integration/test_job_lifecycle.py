"""End-to-end job lifecycle tests: the platform as users see it."""

import pytest

from repro.core import AuthError, InvalidManifest, JobNotFound
from repro.core import layout

from .conftest import (
    CREDS,
    make_platform,
    manifest,
    submit_and_wait_running,
    wait_terminal,
)


class TestHappyPath:
    def test_job_completes_with_full_history(self, platform, client):
        job_id, doc = platform.run_process(
            client.run_to_completion(manifest()), limit=10_000
        )
        assert doc["status"] == "COMPLETED"
        statuses = [h["status"] for h in doc["status_history"]]
        assert statuses == ["QUEUED", "DEPLOYING", "DOWNLOADING", "PROCESSING",
                            "STORING", "COMPLETED"]
        times = [h["time"] for h in doc["status_history"]]
        assert times == sorted(times)

    def test_results_uploaded(self, platform, client):
        job_id, doc = platform.run_process(
            client.run_to_completion(manifest()), limit=10_000
        )
        keys = platform.object_store.list_objects("results", CREDS, prefix=job_id)
        assert f"{job_id}/model" in keys
        assert f"{job_id}/logs" in keys
        assert any("checkpoints" in k for k in keys)

    def test_logs_available_during_and_after(self, platform, client):
        job_id = submit_and_wait_running(platform, client, manifest())

        def tail_logs():
            return (yield from client.logs(job_id, tail=10))

        during = platform.run_process(tail_logs(), limit=600)
        assert during  # log lines visible while training
        wait_terminal(platform, client, job_id)
        after = platform.run_process(tail_logs(), limit=600)
        assert any("exiting with code 0" in line for line in after)

    def test_teardown_cleans_resources(self, platform, client):
        job_id, _doc = platform.run_process(
            client.run_to_completion(manifest()), limit=10_000
        )
        platform.run_for(30.0)  # allow teardown + LCM GC to finish
        k8s = platform.k8s.api
        assert not k8s.exists("StatefulSet", layout.learner_set_name(job_id))
        assert not k8s.exists("Deployment", layout.helper_deployment_name(job_id))
        assert not k8s.exists("NetworkPolicy", layout.network_policy_name(job_id))
        assert not k8s.exists("Job", layout.guardian_job_name(job_id))
        # ETCD left clean too.
        leader = platform.etcd.leader()
        assert leader.state_machine.range(f"jobs/{job_id}/") == []
        # And the GPUs are free again.
        assert platform.k8s.capacity_summary()["gpus_allocated"] == 0

    def test_guardian_creation_under_three_seconds(self, platform, client):
        # Paper §III.d: Guardian creation is "a very quick (less than
        # 3s in our experiments) single step process".
        platform.run_process(client.run_to_completion(manifest()), limit=10_000)
        created = platform.tracer.query(component="lcm", kind="guardian-created")
        assert created
        ready = platform.tracer.query(component="guardian", kind="component-ready")
        assert ready
        assert ready[0].time - created[0].time < 3.0

    def test_gpu_seconds_metered(self, platform, client):
        platform.run_process(client.run_to_completion(manifest()), limit=10_000)

        def usage():
            return (yield from client.usage())

        report = platform.run_process(usage(), limit=600)
        assert report["jobs_submitted"] == 1
        assert report["gpus_requested"] == 1
        assert report["api_calls_total"] > 1


class TestDistributedJob:
    def test_multi_learner_job_completes(self, platform, client):
        spec = manifest(learners=3, framework="horovod", target_steps=40)
        job_id, doc = platform.run_process(
            client.run_to_completion(spec), limit=20_000
        )
        assert doc["status"] == "COMPLETED"

    def test_learner_statuses_visible(self, platform, client):
        spec = manifest(learners=2, framework="horovod", target_steps=200)
        job_id = submit_and_wait_running(platform, client, spec, timeout=600)

        def status():
            return (yield from client.status(job_id))

        doc = platform.run_process(status(), limit=600)
        assert set(doc["learners"]) == {"learner-0", "learner-1"}
        for report in doc["learners"].values():
            assert report["status"] == "PROCESSING"

    def test_multi_gpu_learners_scheduled(self, platform, client):
        spec = manifest(learners=2, gpus_per_learner=2, framework="tensorflow",
                        target_steps=30)
        job_id = submit_and_wait_running(platform, client, spec, timeout=600)
        assert platform.k8s.capacity_summary()["gpus_allocated"] == 4
        wait_terminal(platform, client, job_id)


class TestFailingJob:
    def test_user_code_failure_marks_job_failed(self, platform, client):
        spec = manifest(extra={"fail_at_step": 10}, target_steps=100)
        job_id, doc = platform.run_process(
            client.run_to_completion(spec), limit=20_000
        )
        assert doc["status"] == "FAILED"

    def test_failed_job_resources_cleaned(self, platform, client):
        spec = manifest(extra={"fail_at_step": 10}, target_steps=100)
        job_id, _doc = platform.run_process(
            client.run_to_completion(spec), limit=20_000
        )
        platform.run_for(30.0)
        assert platform.k8s.capacity_summary()["gpus_allocated"] == 0

    def test_logs_survive_failure(self, platform, client):
        # Paper §II: reliable log streaming "even if it crashes/fails".
        spec = manifest(extra={"fail_at_step": 10}, target_steps=100)
        job_id, _doc = platform.run_process(
            client.run_to_completion(spec), limit=20_000
        )

        def tail_logs():
            return (yield from client.logs(job_id))

        lines = platform.run_process(tail_logs(), limit=600)
        assert any("exiting with code 1" in line for line in lines)


class TestHalt:
    def test_halt_running_job(self, platform, client):
        job_id = submit_and_wait_running(
            platform, client, manifest(target_steps=100_000)
        )

        def halt():
            return (yield from client.halt(job_id))

        platform.run_process(halt(), limit=600)
        doc = wait_terminal(platform, client, job_id, timeout=600)
        assert doc["status"] == "HALTED"
        platform.run_for(30.0)
        assert platform.k8s.capacity_summary()["gpus_allocated"] == 0

    def test_halt_queued_job_is_immediate(self):
        # Saturate the cluster so the second job stays QUEUED.
        platform = make_platform(gpu_nodes=1, gpus_per_node=1)
        client = platform.client("team-a")

        def scenario():
            first = yield from client.submit(manifest(target_steps=100_000))
            yield from client.wait_for_status(first, statuses={"PROCESSING"},
                                              timeout=600)
            second = yield from client.submit(manifest(target_steps=100_000))
            yield from client.halt(second)
            doc = yield from client.wait_for_status(second, timeout=120)
            return doc

        doc = platform.run_process(scenario(), limit=5_000)
        assert doc["status"] == "HALTED"


class TestMultiTenancy:
    def test_tenants_cannot_see_each_other(self, platform):
        alice, bob = platform.client("alice"), platform.client("bob")

        def scenario():
            job_id = yield from alice.submit(manifest())
            mine = yield from alice.list_jobs()
            theirs = yield from bob.list_jobs()
            return job_id, mine, theirs

        job_id, mine, theirs = platform.run_process(scenario(), limit=600)
        assert [j["job_id"] for j in mine] == [job_id]
        assert theirs == []

    def test_cross_tenant_status_denied(self, platform):
        alice, bob = platform.client("alice"), platform.client("bob")

        def scenario():
            job_id = yield from alice.submit(manifest())
            yield from bob.status(job_id)

        with pytest.raises(JobNotFound):
            platform.run_process(scenario(), limit=600)

    def test_bad_token_rejected(self, platform):
        from repro.core import DlaasClient

        intruder = DlaasClient(platform, "forged-token")

        def scenario():
            yield from intruder.list_jobs()

        with pytest.raises(AuthError):
            platform.run_process(scenario(), limit=600)

    def test_learner_network_isolation(self, platform, client):
        job_id = submit_and_wait_running(platform, client, manifest(target_steps=5000))
        learner = {"dlaas-job": job_id, "role": "learner"}
        helper = {"dlaas-job": job_id, "role": "helper"}
        other = {"dlaas-job": "job-99999", "role": "learner"}
        assert platform.k8s.network_allowed(helper, learner)
        assert platform.k8s.network_allowed(learner, learner)
        assert not platform.k8s.network_allowed(other, learner)


class TestValidation:
    def test_invalid_manifest_rejected_at_api(self, platform, client):
        def scenario():
            yield from client.submit(manifest(model="made-up-net"))

        with pytest.raises(InvalidManifest):
            platform.run_process(scenario(), limit=600)

    def test_rejected_submission_stores_nothing(self, platform, client):
        def scenario():
            try:
                yield from client.submit(manifest(target_steps=0))
            except InvalidManifest:
                pass
            return (yield from client.list_jobs())

        assert platform.run_process(scenario(), limit=600) == []


class TestConcurrentJobs:
    def test_parallel_jobs_all_complete(self, platform, client):
        def scenario():
            job_ids = []
            for i in range(3):
                spec = manifest(name=f"batch-{i}", target_steps=40)
                job_ids.append((yield from client.submit(spec)))
            docs = []
            for job_id in job_ids:
                docs.append((yield from client.wait_for_status(job_id, timeout=5000)))
            return docs

        docs = platform.run_process(scenario(), limit=20_000)
        assert [d["status"] for d in docs] == ["COMPLETED"] * 3

    def test_job_ids_unique_and_ordered(self, platform, client):
        def scenario():
            ids = []
            for _ in range(5):
                ids.append((yield from client.submit(manifest(target_steps=20))))
            return ids

        ids = platform.run_process(scenario(), limit=600)
        assert len(set(ids)) == 5
        assert ids == sorted(ids)

    def test_queued_job_runs_when_capacity_frees(self):
        platform = make_platform(gpu_nodes=1, gpus_per_node=1)
        client = platform.client("team-a")

        def scenario():
            first = yield from client.submit(manifest(target_steps=40))
            second = yield from client.submit(manifest(target_steps=40))
            doc1 = yield from client.wait_for_status(first, timeout=5000)
            doc2 = yield from client.wait_for_status(second, timeout=5000)
            return doc1, doc2

        doc1, doc2 = platform.run_process(scenario(), limit=20_000)
        assert doc1["status"] == "COMPLETED"
        assert doc2["status"] == "COMPLETED"
