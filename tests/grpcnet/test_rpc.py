"""Unit tests for the simulated RPC fabric."""

import pytest

from repro.grpcnet import (
    Client,
    DeadlineExceeded,
    LatencyModel,
    LoadBalancer,
    MethodNotFound,
    Network,
    Server,
    ServiceError,
    Unavailable,
)
from repro.sim import Kernel


@pytest.fixture
def kernel():
    return Kernel(seed=1)


@pytest.fixture
def network(kernel):
    return Network(kernel, latency=LatencyModel(base=0.001, jitter=0.0))


def make_echo_server(kernel, network, address="svc"):
    server = Server(kernel, network, address)
    server.add_method("echo", lambda request: {"echo": request})
    server.start()
    return server


def run_call(kernel, generator):
    return kernel.run_until_complete(kernel.spawn(generator))


class TestBasicCalls:
    def test_plain_handler(self, kernel, network):
        make_echo_server(kernel, network)

        def caller():
            response = yield network.call("svc", "echo", "hi")
            return response

        assert run_call(kernel, caller()) == {"echo": "hi"}

    def test_latency_applied_both_ways(self, kernel, network):
        make_echo_server(kernel, network)

        def caller():
            yield network.call("svc", "echo", None)
            return kernel.now

        assert run_call(kernel, caller()) == pytest.approx(0.002)

    def test_generator_handler_takes_time(self, kernel, network):
        server = Server(kernel, network, "slow").start()

        def handler(_request):
            yield kernel.sleep(1.0)
            return "done"

        server.add_method("work", handler)

        def caller():
            response = yield network.call("slow", "work", None)
            return (kernel.now, response)

        now, response = run_call(kernel, caller())
        assert response == "done"
        assert now == pytest.approx(1.002)

    def test_method_not_found(self, kernel, network):
        make_echo_server(kernel, network)

        def caller():
            yield network.call("svc", "nope", None)

        with pytest.raises(MethodNotFound):
            run_call(kernel, caller())

    def test_handler_exception_wrapped(self, kernel, network):
        server = Server(kernel, network, "svc").start()

        def bad(_request):
            raise ValueError("handler blew up")

        server.add_method("bad", bad)

        def caller():
            yield network.call("svc", "bad", None)

        with pytest.raises(ServiceError) as excinfo:
            run_call(kernel, caller())
        assert isinstance(excinfo.value.cause, ValueError)

    def test_unknown_address_unavailable(self, kernel, network):
        def caller():
            yield network.call("ghost", "echo", None)

        with pytest.raises(Unavailable):
            run_call(kernel, caller())

    def test_add_service_registers_rpc_methods(self, kernel, network):
        class Svc:
            def ping_rpc(self, _request):
                return "pong"

            def _private_rpc(self, _request):  # pragma: no cover
                return "hidden"

        server = Server(kernel, network, "svc").start()
        server.add_service(Svc())

        def caller():
            response = yield network.call("svc", "ping", None)
            return response

        assert run_call(kernel, caller()) == "pong"

        def caller_private():
            yield network.call("svc", "_private", None)

        with pytest.raises(MethodNotFound):
            run_call(kernel, caller_private())


class TestCrashSemantics:
    def test_stopped_server_is_unavailable(self, kernel, network):
        server = make_echo_server(kernel, network)
        server.stop()

        def caller():
            yield network.call("svc", "echo", None)

        with pytest.raises(Unavailable):
            run_call(kernel, caller())

    def test_crash_mid_call_surfaces_unavailable(self, kernel, network):
        server = Server(kernel, network, "svc").start()

        def handler(_request):
            yield kernel.sleep(10.0)
            return "never"

        server.add_method("slow", handler)

        def crasher():
            yield kernel.sleep(1.0)
            server.stop()

        kernel.spawn(crasher())

        def caller():
            yield network.call("svc", "slow", None)

        with pytest.raises(Unavailable, match="crashed"):
            run_call(kernel, caller())

    def test_restart_after_crash(self, kernel, network):
        server = make_echo_server(kernel, network)
        server.stop()
        server.start()

        def caller():
            response = yield network.call("svc", "echo", "back")
            return response

        assert run_call(kernel, caller()) == {"echo": "back"}


class TestDeadlines:
    def test_deadline_exceeded(self, kernel, network):
        server = Server(kernel, network, "svc").start()

        def handler(_request):
            yield kernel.sleep(10.0)
            return "late"

        server.add_method("slow", handler)

        def caller():
            yield network.call("svc", "slow", None, deadline=0.5)

        with pytest.raises(DeadlineExceeded):
            run_call(kernel, caller())
        assert kernel.now == pytest.approx(0.5)

    def test_deadline_not_hit(self, kernel, network):
        make_echo_server(kernel, network)

        def caller():
            response = yield network.call("svc", "echo", 1, deadline=5.0)
            return response

        assert run_call(kernel, caller()) == {"echo": 1}


class TestPartitions:
    def test_partition_blocks_call(self, kernel, network):
        make_echo_server(kernel, network)
        network.partition("me", "svc")

        def caller():
            yield network.call("svc", "echo", None, caller="me")

        with pytest.raises(Unavailable):
            run_call(kernel, caller())

    def test_heal_restores_traffic(self, kernel, network):
        make_echo_server(kernel, network)
        network.partition("me", "svc")
        network.heal("me", "svc")

        def caller():
            response = yield network.call("svc", "echo", "x", caller="me")
            return response

        assert run_call(kernel, caller()) == {"echo": "x"}


class TestClientRetries:
    def test_retry_until_server_returns(self, kernel, network):
        server = make_echo_server(kernel, network)
        server.stop()

        def restarter():
            yield kernel.sleep(0.06)
            server.start()

        kernel.spawn(restarter())
        client = Client(kernel, network, "svc", retries=5, retry_backoff=0.05)

        def caller():
            response = yield from client.call("echo", "retry")
            return response

        assert run_call(kernel, caller()) == {"echo": "retry"}

    def test_retries_exhausted(self, kernel, network):
        client = Client(kernel, network, "ghost", retries=2, retry_backoff=0.01)

        def caller():
            yield from client.call("echo", None)

        with pytest.raises(Unavailable):
            run_call(kernel, caller())

    def test_service_error_not_retried(self, kernel, network):
        server = Server(kernel, network, "svc").start()
        attempts = []

        def flaky(_request):
            attempts.append(1)
            raise ValueError("app error")

        server.add_method("flaky", flaky)
        client = Client(kernel, network, "svc", retries=5, retry_backoff=0.01)

        def caller():
            yield from client.call("flaky", None)

        with pytest.raises(ServiceError):
            run_call(kernel, caller())
        assert len(attempts) == 1


class TestLoadBalancer:
    def test_round_robin_rotation(self):
        balancer = LoadBalancer("api", ["a", "b", "c"])
        assert balancer.pick_order() == ["a", "b", "c"]
        assert balancer.pick_order() == ["b", "c", "a"]
        assert balancer.pick_order() == ["c", "a", "b"]

    def test_failover_to_live_instance(self, kernel, network):
        make_echo_server(kernel, network, "api-0")
        dead = Server(kernel, network, "api-1")  # never started
        assert not dead.running
        balancer = LoadBalancer("api", ["api-1", "api-0"])
        client = Client(kernel, network, balancer, retries=0)

        def caller():
            response = yield from client.call("echo", "ok")
            return response

        assert run_call(kernel, caller()) == {"echo": "ok"}

    def test_no_endpoints_unavailable(self, kernel, network):
        client = Client(kernel, network, LoadBalancer("empty"), retries=0)

        def caller():
            yield from client.call("echo", None)

        with pytest.raises(Unavailable):
            run_call(kernel, caller())

    def test_spread_across_instances(self, kernel, network):
        servers = [make_echo_server(kernel, network, f"api-{i}") for i in range(3)]
        balancer = LoadBalancer("api", [s.address for s in servers])
        client = Client(kernel, network, balancer, retries=0)

        def caller():
            for _ in range(9):
                yield from client.call("echo", None)

        run_call(kernel, caller())
        assert [s.requests_served for s in servers] == [3, 3, 3]


class TestLossRate:
    def test_lossy_network_eventually_fails_calls(self, kernel):
        network = Network(kernel, latency=LatencyModel(0.001, 0.0), loss_rate=0.5)
        make_echo_server(kernel, network)
        failures = 0

        def caller():
            nonlocal failures
            for _ in range(50):
                try:
                    yield network.call("svc", "echo", None)
                except Unavailable:
                    failures += 1

        run_call(kernel, caller())
        assert 5 < failures < 45  # ~50% loss, generous bounds

    def test_invalid_loss_rate(self, kernel):
        with pytest.raises(ValueError):
            Network(kernel, loss_rate=1.5)


class TestServiceTimeAndPrefix:
    def test_service_time_adds_to_latency(self, kernel, network):
        server = Server(kernel, network, "svc", service_time=0.5)
        server.add_method("echo", lambda request: request)
        server.start()

        def caller():
            yield network.call("svc", "echo", None)
            return kernel.now

        assert run_call(kernel, caller()) == pytest.approx(0.502)

    def test_add_service_with_prefix(self, kernel, network):
        class Trainer:
            def start_rpc(self, _request):
                return "started"

        server = Server(kernel, network, "svc").start()
        server.add_service(Trainer(), prefix="Trainer.")

        def caller():
            response = yield network.call("svc", "Trainer.start", None)
            return response

        assert run_call(kernel, caller()) == "started"


class TestSingleSerializationBoundary:
    def test_copy_responses_isolates_server_state(self, kernel, network):
        """With copy_responses=True the handler may return a live
        reference; the boundary copies it once, so the caller's
        mutations never reach the server's state."""
        state = {"status": "RUNNING", "history": ["QUEUED"]}
        server = Server(kernel, network, "svc", copy_responses=True)
        server.add_method("get", lambda _request: state)
        server.start()

        def caller():
            response = yield network.call("svc", "get", None)
            return response

        response = run_call(kernel, caller())
        assert response == state
        response["status"] = "MUTATED"
        response["history"].append("MUTATED")
        assert state == {"status": "RUNNING", "history": ["QUEUED"]}

    def test_freeze_check_catches_request_mutation(self, kernel):
        """debug_freeze snapshots each request and asserts the handler
        did not mutate it in place."""
        network = Network(kernel, latency=LatencyModel(base=0.001, jitter=0.0),
                          debug_freeze=True)
        server = Server(kernel, network, "svc").start()

        def mutating(request):
            request["dirty"] = True
            return "ok"

        server.add_method("mutate", mutating)
        server.add_method("clean", lambda request: dict(request))

        def call(method):
            def caller():
                return (yield network.call("svc", method, {"a": 1}))
            return run_call(kernel, caller())

        assert call("clean") == {"a": 1}
        with pytest.raises(AssertionError, match="mutated its request"):
            call("mutate")
