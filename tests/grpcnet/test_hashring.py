"""Unit tests for the consistent-hash ring (satellite 3 of ISSUE 10).

Covers the three properties the sharded API tier depends on: stable
assignment, bounded (≤ K/n-ish) key movement on replica add/remove,
and deterministic routing with no dict-order dependence — the same
ring built from a shuffled node list must route identically.
"""

import random
import subprocess
import sys

from repro.grpcnet import ConsistentHashRing, LoadBalancer, stable_hash

KEYS = [f"tenant-{i:04d}" for i in range(2000)]
NODES = [f"api:dlaas-api-{i}" for i in range(1, 6)]


class TestStableAssignment:
    def test_same_key_same_owner(self):
        ring = ConsistentHashRing(NODES)
        for key in KEYS[:200]:
            owners = {ring.owner(key) for _ in range(5)}
            assert len(owners) == 1

    def test_every_key_owned_by_member(self):
        ring = ConsistentHashRing(NODES)
        for key in KEYS:
            assert ring.owner(key) in NODES

    def test_distribution_is_roughly_even(self):
        ring = ConsistentHashRing(NODES, vnodes=128)
        counts = {node: 0 for node in NODES}
        for key in KEYS:
            counts[ring.owner(key)] += 1
        expected = len(KEYS) / len(NODES)
        for node, count in counts.items():
            assert 0.5 * expected <= count <= 1.6 * expected, (node, counts)

    def test_empty_ring(self):
        ring = ConsistentHashRing()
        assert ring.owner("anything") is None
        assert ring.ordered("anything") == []

    def test_ordered_starts_with_owner_and_covers_all(self):
        ring = ConsistentHashRing(NODES)
        for key in KEYS[:100]:
            order = ring.ordered(key)
            assert order[0] == ring.owner(key)
            assert sorted(order) == sorted(NODES)


class TestBoundedMovement:
    def test_add_moves_at_most_slice(self):
        ring = ConsistentHashRing(NODES, vnodes=128)
        before = ring.assignments(KEYS)
        ring.add("api:dlaas-api-6")
        after = ring.assignments(KEYS)
        moved = [k for k in KEYS if before[k] != after[k]]
        # Ideal movement is K/(n+1); allow 2x slack for vnode variance.
        assert len(moved) <= 2 * len(KEYS) / 6, len(moved)
        # Every moved key moved TO the new node, never between old ones.
        assert all(after[k] == "api:dlaas-api-6" for k in moved)

    def test_remove_moves_only_victims_keys(self):
        ring = ConsistentHashRing(NODES, vnodes=128)
        before = ring.assignments(KEYS)
        ring.remove(NODES[2])
        after = ring.assignments(KEYS)
        moved = [k for k in KEYS if before[k] != after[k]]
        assert moved == [k for k in KEYS if before[k] == NODES[2]]
        assert len(moved) <= 2 * len(KEYS) / len(NODES), len(moved)

    def test_add_then_remove_is_identity(self):
        ring = ConsistentHashRing(NODES)
        before = ring.assignments(KEYS)
        ring.add("api:dlaas-api-9")
        ring.remove("api:dlaas-api-9")
        assert ring.assignments(KEYS) == before


class TestDeterminism:
    def test_insertion_order_irrelevant(self):
        shuffled = list(NODES)
        random.Random(7).shuffle(shuffled)
        a = ConsistentHashRing(NODES)
        b = ConsistentHashRing(shuffled)
        assert a.assignments(KEYS) == b.assignments(KEYS)
        for key in KEYS[:50]:
            assert a.ordered(key) == b.ordered(key)

    def test_stable_hash_is_sha256_derived(self):
        # builtin hash() is salted per process; stable_hash must not be.
        import hashlib
        digest = hashlib.sha256(b"tenant-a").digest()
        assert stable_hash("tenant-a") == int.from_bytes(digest[:8], "big")

    def test_routing_identical_across_processes(self):
        # A child interpreter (fresh hash salt) must route identically.
        script = (
            "import sys; sys.path.insert(0, 'src')\n"
            "from repro.grpcnet import ConsistentHashRing\n"
            "ring = ConsistentHashRing(["
            + ", ".join(repr(n) for n in NODES)
            + "])\n"
            "print(';'.join(ring.owner(f'tenant-{i:04d}') "
            "for i in range(100)))\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", script], capture_output=True,
            text=True, check=True, cwd="/root/repo",
        ).stdout.strip()
        ring = ConsistentHashRing(NODES)
        local = ";".join(ring.owner(f"tenant-{i:04d}") for i in range(100))
        assert out == local


class TestRingBalancer:
    def test_unkeyed_pick_stays_round_robin(self):
        lb = LoadBalancer("api", endpoints=NODES, ring=True)
        assert lb.pick_order() == NODES
        assert lb.pick_order() == NODES[1:] + NODES[:1]

    def test_keyed_pick_is_ring_order(self):
        lb = LoadBalancer("api", endpoints=NODES, ring=True)
        ring = ConsistentHashRing(NODES)
        for key in KEYS[:50]:
            assert lb.pick_order(key=key) == ring.ordered(key)

    def test_keyed_pick_does_not_advance_cursor(self):
        lb = LoadBalancer("api", endpoints=NODES, ring=True)
        lb.pick_order(key="tenant-a")
        assert lb.pick_order() == NODES

    def test_ringless_balancer_ignores_key(self):
        lb = LoadBalancer("api", endpoints=NODES)
        assert lb.pick_order(key="tenant-a") == NODES

    def test_membership_tracks_add_remove(self):
        lb = LoadBalancer("api", endpoints=NODES[:2], ring=True)
        lb.add(NODES[2])
        assert sorted(lb.ring.nodes) == sorted(NODES[:3])
        lb.remove(NODES[0])
        assert sorted(lb.ring.nodes) == sorted(NODES[1:3])
        for key in KEYS[:50]:
            assert lb.pick_order(key=key)[0] in NODES[1:3]
