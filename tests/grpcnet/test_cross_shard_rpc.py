"""RPCs across shard boundaries (repro.grpcnet x repro.sim.shard).

Two single-kernel "cells", each with its own Network, wired through a
:class:`ShardedKernel`: shard 1 serves, shard 0 calls. These are the
grpcnet-level semantics the platform federation rides on — success,
remote error decoding, deadlines, and late-response accounting.
"""

import pytest

from repro.grpcnet import (
    DeadlineExceeded,
    LatencyModel,
    MethodNotFound,
    Network,
    RpcError,
    Server,
    Unavailable,
)
from repro.sim import Kernel, ShardSlot, ShardedKernel, SimError

LOOKAHEAD = 0.25


class CellProgram:
    """A minimal cell: kernel + network bound to the boundary port."""

    def __init__(self, slot):
        self.kernel = Kernel(seed=slot.shard_id)
        self.port = slot.bind(self.kernel)
        self.network = Network(
            self.kernel, latency=LatencyModel(base=0.001, jitter=0.0))
        self.network.bind_shard(self.port)
        self.outcomes = []
        self.proc = self.kernel.spawn(self._drive())

    def _drive(self):
        return
        yield  # pragma: no cover

    def _record(self, call):
        try:
            response = yield call
            self.outcomes.append(("ok", response))
        except Exception as exc:  # noqa: BLE001 — outcome capture
            self.outcomes.append(("error", type(exc).__name__, str(exc)))

    @property
    def done(self):
        return self.proc.triggered

    def settle_time(self):
        return self.kernel.now + 5.0

    def result(self):
        return {
            "shard": self.port.shard_id,
            "outcomes": tuple(self.outcomes),
            "remote_calls": self.network.remote_calls_total,
            "late_responses": self.network.remote_late_responses,
            "boundary": self.port.counters(),
        }


class ServerCell(CellProgram):
    def __init__(self, slot):
        super().__init__(slot)
        server = Server(self.kernel, self.network, "svc")
        server.add_method("echo", lambda request: {"echo": request})

        def slow(_request):
            yield self.kernel.sleep(2.0)
            return "slow-done"

        server.add_method("slow", slow)
        server.start()


class CallerCell(CellProgram):
    """Exercises every outcome against the remote ``svc``."""

    def __init__(self, slot):
        super().__init__(slot)
        self.network.add_remote("svc", 1)

    def _drive(self):
        call = self.network.call
        yield from self._record(call("svc", "echo", {"n": 1}))
        yield from self._record(call("svc", "nope", None))
        yield from self._record(call("svc", "slow", None, deadline=0.5))
        yield from self._record(call("svc", "echo", "after", deadline=10.0))
        # Outlive the abandoned slow call's response so it arrives (as a
        # counted late response) instead of dying in the settle phase.
        yield self.kernel.sleep(5.0)


def build_server(slot):
    return ServerCell(slot)


def build_caller(slot):
    return CallerCell(slot)


def run_pair(executor="inline", workers=None):
    return ShardedKernel(
        [(build_caller, (), {}), (build_server, (), {})],
        lookahead=LOOKAHEAD, executor=executor, workers=workers).run()


def test_cross_shard_call_outcomes():
    caller = run_pair().results[0]
    ok1, not_found, deadline, ok2 = caller["outcomes"]
    assert ok1 == ("ok", {"echo": {"n": 1}})
    assert not_found[:2] == ("error", "MethodNotFound")
    assert deadline[:2] == ("error", "DeadlineExceeded")
    assert ok2 == ("ok", {"echo": "after"})
    assert caller["remote_calls"] == 4
    # the slow response came back after its caller gave up
    assert caller["late_responses"] == 1


def test_cross_shard_executors_agree():
    inline = run_pair()
    forked = run_pair(executor="process", workers=2)
    assert forked.results == inline.results
    assert forked.message_digest == inline.message_digest


def test_remote_round_trip_pays_the_boundary_latency_twice():
    caller = run_pair().results[0]
    # 4 requests out; 4 responses in (the late slow response still
    # arrives — it is counted, not lost, because the last echo keeps
    # the caller shard alive past it)
    assert caller["boundary"]["messages_sent"] == 4
    assert caller["boundary"]["messages_received"] == 4


def test_add_remote_requires_bound_port():
    network = Network(Kernel())
    with pytest.raises(SimError, match="bind_shard"):
        network.add_remote("svc", 1)


def test_add_remote_rejects_own_shard():
    kernel = Kernel()
    network = Network(kernel)
    network.bind_shard(ShardSlot(0, 2, LOOKAHEAD).bind(kernel))
    with pytest.raises(ValueError, match="own shard"):
        network.add_remote("svc", 0)


def test_remote_address_cannot_be_registered_locally():
    kernel = Kernel()
    network = Network(kernel)
    network.bind_shard(ShardSlot(0, 2, LOOKAHEAD).bind(kernel))
    network.add_remote("svc", 1)
    with pytest.raises(ValueError, match="owned by shard"):
        network.register("svc", object())


def test_local_address_cannot_be_declared_remote():
    kernel = Kernel(seed=1)
    network = Network(kernel, latency=LatencyModel(base=0.001, jitter=0.0))
    network.bind_shard(ShardSlot(0, 2, LOOKAHEAD).bind(kernel))
    Server(kernel, network, "svc").start()
    with pytest.raises(ValueError, match="registered locally"):
        network.add_remote("svc", 1)


def test_bind_shard_is_once_only():
    kernel = Kernel()
    network = Network(kernel)
    network.bind_shard(ShardSlot(0, 2, LOOKAHEAD).bind(kernel))
    with pytest.raises(SimError, match="already bound"):
        network.bind_shard(ShardSlot(0, 2, LOOKAHEAD).bind(Kernel()))


def test_error_names_decode_to_typed_exceptions():
    from repro.grpcnet.network import _decode_error

    assert isinstance(_decode_error(("Unavailable", "x"), "m"), Unavailable)
    assert isinstance(
        _decode_error(("DeadlineExceeded", "x"), "m"), DeadlineExceeded)
    assert isinstance(
        _decode_error(("MethodNotFound", "x"), "m"), MethodNotFound)
    other = _decode_error(("ValueError", "boom"), "train")
    assert isinstance(other, RpcError)
    assert "train" in str(other) and "boom" in str(other)
