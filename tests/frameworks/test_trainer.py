"""Tests for the simulated training loop: checkpointing and resume."""

import pytest

from repro.frameworks import (
    BARE_METAL,
    CheckpointPolicy,
    CheckpointStore,
    K80,
    RESNET50,
    TENSORFLOW,
    TrainingRun,
    WorkloadConfig,
)
from repro.objectstore import ObjectStore
from repro.sim import Kernel

CREDS = {"key": "k"}


@pytest.fixture
def kernel():
    return Kernel(seed=5)


@pytest.fixture
def store(kernel):
    store = ObjectStore(kernel, link_bandwidth=1_000_000_000, request_latency=0.01)
    store.create_bucket("results", CREDS)
    return store


def ckpt_store(store):
    return CheckpointStore(store, "results", "jobs/j1", CREDS)


def config():
    return WorkloadConfig(model=RESNET50, framework=TENSORFLOW, gpu=K80)


def run_to_completion(kernel, training, limit=None):
    process = kernel.spawn(training.run())
    return kernel.run_until_complete(process, limit=limit)


class TestTrainingRun:
    def test_completes_target_steps(self, kernel, store):
        training = TrainingRun(kernel, config(), BARE_METAL, target_steps=100)
        assert run_to_completion(kernel, training) == 0
        assert training.step == 100

    def test_startup_time_paid_first(self, kernel):
        training = TrainingRun(kernel, config(), BARE_METAL, target_steps=1)
        run_to_completion(kernel, training)
        assert kernel.now >= TENSORFLOW.startup_time

    def test_progress_callback_cadence(self, kernel):
        reports = []
        training = TrainingRun(kernel, config(), BARE_METAL, target_steps=100,
                               progress_callback=lambda s, t: reports.append(s),
                               progress_every=25)
        run_to_completion(kernel, training)
        assert reports == [25, 50, 75, 100]

    def test_invalid_target_rejected(self, kernel):
        with pytest.raises(ValueError):
            TrainingRun(kernel, config(), BARE_METAL, target_steps=0)

    def test_graceful_stop_returns_143(self, kernel):
        stop = kernel.event()
        training = TrainingRun(kernel, config(), BARE_METAL, target_steps=10_000)
        process = kernel.spawn(training.run(stop_event=stop))

        def stopper():
            yield kernel.sleep(30.0)
            stop.succeed()

        kernel.spawn(stopper())
        assert kernel.run_until_complete(process) == 143
        assert 0 < training.step < 10_000


class TestCheckpointing:
    def test_checkpoints_written_at_interval(self, kernel, store):
        training = TrainingRun(
            kernel, config(), BARE_METAL, target_steps=500,
            checkpoint_policy=CheckpointPolicy(interval=60.0),
            checkpoint_store=ckpt_store(store),
        )
        run_to_completion(kernel, training)
        assert training.checkpoints_written >= 2
        keys = store.list_objects("results", CREDS, prefix="jobs/j1/ckpt-")
        assert len(keys) == training.checkpoints_written

    def test_disabled_policy_writes_nothing(self, kernel, store):
        training = TrainingRun(
            kernel, config(), BARE_METAL, target_steps=200,
            checkpoint_policy=CheckpointPolicy(interval=0),
            checkpoint_store=ckpt_store(store),
        )
        run_to_completion(kernel, training)
        assert store.list_objects("results", CREDS) == []

    def test_negative_interval_rejected(self):
        with pytest.raises(ValueError):
            CheckpointPolicy(interval=-1)

    def test_resume_from_latest_checkpoint(self, kernel, store):
        checkpoints = ckpt_store(store)
        first = TrainingRun(
            kernel, config(), BARE_METAL, target_steps=10_000,
            checkpoint_policy=CheckpointPolicy(interval=60.0),
            checkpoint_store=checkpoints,
        )
        process = kernel.spawn(first.run())
        kernel.run(until=400.0)  # crash mid-training
        process.kill("injected crash")
        kernel.run(until=401.0)
        saved_step = checkpoints.latest_step()
        assert saved_step > 0

        second = TrainingRun(
            kernel, config(), BARE_METAL, target_steps=10_000,
            checkpoint_policy=CheckpointPolicy(interval=60.0),
            checkpoint_store=checkpoints,
        )
        restarted = kernel.spawn(second.run())
        kernel.run(until=500.0)
        # The restarted run resumed at the checkpoint, not from zero.
        assert second.step >= saved_step
        assert second.steps_executed == second.step - saved_step
        restarted.kill("end of test")
        kernel.run(until=501.0)

    def test_lost_work_bounded_by_interval(self, kernel, store):
        # Paper §III.h: "the amount of work lost due to a crash is
        # determined by the checkpointing interval."
        checkpoints = ckpt_store(store)
        training = TrainingRun(
            kernel, config(), BARE_METAL, target_steps=10_000,
            checkpoint_policy=CheckpointPolicy(interval=30.0),
            checkpoint_store=checkpoints,
        )
        process = kernel.spawn(training.run())
        kernel.run(until=300.0)
        process.kill("injected crash")
        kernel.run(until=301.0)
        lost_steps = training.step - checkpoints.latest_step()
        steps_per_interval = 30.0 / training.step_seconds
        # Lost work < one checkpoint interval (+ upload slack).
        assert lost_steps <= steps_per_interval * 1.5

    def test_restore_on_empty_store_starts_from_zero(self, kernel, store):
        checkpoints = ckpt_store(store)

        def scenario():
            step = yield from checkpoints.restore(RESNET50)
            return step

        assert kernel.run_until_complete(kernel.spawn(scenario())) == 0


class TestSyntheticLoss:
    def test_loss_decreases_with_steps_for_sane_lr(self):
        from repro.frameworks import synthetic_loss

        losses = [synthetic_loss(0.05, step) for step in (0, 100, 400, 1000)]
        assert losses == sorted(losses, reverse=True)

    def test_optimal_lr_beats_extremes_at_fixed_budget(self):
        from repro.frameworks import synthetic_loss

        at_400 = {lr: synthetic_loss(lr, 400) for lr in (0.002, 0.05, 0.8)}
        assert at_400[0.05] < at_400[0.002]
        assert at_400[0.05] < at_400[0.8]

    def test_huge_lr_diverges(self):
        from repro.frameworks import synthetic_loss

        assert synthetic_loss(0.8, 2000) > synthetic_loss(0.8, 100)

    def test_deterministic(self):
        from repro.frameworks import synthetic_loss

        assert synthetic_loss(0.01, 123) == synthetic_loss(0.01, 123)

    def test_nonpositive_lr_never_learns(self):
        from repro.frameworks import synthetic_loss

        assert synthetic_loss(0.0, 1000) == synthetic_loss(0.0, 0)
