"""Tests for the analytic performance model and its calibration shape."""

import pytest

from repro.frameworks import (
    BARE_METAL,
    CAFFE,
    DGX1,
    DLAAS,
    ETH_1G,
    HOROVOD,
    INCEPTIONV3,
    K80,
    NVLINK,
    P100_PCIE,
    P100_SXM2,
    PCIE3,
    RESNET50,
    TENSORFLOW,
    VGG16,
    WorkloadConfig,
    achieved_tflops,
    communication_time,
    compute_time,
    get_framework,
    get_gpu,
    get_model,
    images_per_sec,
    overhead_percent,
    step_time,
)


def k80_config(model, framework, gpus):
    return WorkloadConfig(model=model, framework=framework, gpu=K80,
                          gpus_per_learner=gpus, intra_node=PCIE3)


class TestCatalogues:
    def test_lookup_by_name(self):
        assert get_model("VGG16") is VGG16
        assert get_gpu("K80") is K80
        assert get_framework("TensorFlow") is TENSORFLOW

    def test_unknown_names_raise(self):
        with pytest.raises(KeyError):
            get_model("lenet-9000")
        with pytest.raises(KeyError):
            get_gpu("h100")
        with pytest.raises(KeyError):
            get_framework("jax")

    def test_gradient_and_checkpoint_sizes(self):
        assert VGG16.gradient_mb == pytest.approx(552.0)
        assert VGG16.checkpoint_mb == pytest.approx(1104.0)


class TestComputeModel:
    def test_p100_faster_than_k80(self):
        assert achieved_tflops(P100_PCIE, RESNET50) > achieved_tflops(K80, RESNET50)

    def test_hbm_gap_scales_with_sensitivity(self):
        gap = lambda m: 1 - achieved_tflops(P100_PCIE, m) / achieved_tflops(P100_SXM2, m)
        assert gap(INCEPTIONV3) < gap(RESNET50) < gap(VGG16)

    def test_compute_time_linear_in_batch(self):
        small = WorkloadConfig(model=RESNET50, framework=TENSORFLOW, gpu=K80,
                               batch_per_gpu=32)
        large = WorkloadConfig(model=RESNET50, framework=TENSORFLOW, gpu=K80,
                               batch_per_gpu=64)
        assert compute_time(large) == pytest.approx(2 * compute_time(small))

    def test_throughput_plausible_ranges(self):
        # Sanity band, not exact numbers: single P100, ResNet-50.
        cfg = WorkloadConfig(model=RESNET50, framework=TENSORFLOW, gpu=P100_PCIE)
        ips = images_per_sec(cfg, BARE_METAL)
        assert 100 < ips < 400


class TestCommunicationModel:
    def test_single_gpu_has_no_comm(self):
        assert communication_time(k80_config(VGG16, CAFFE, 1)) == 0.0

    def test_comm_grows_with_gpus(self):
        times = [communication_time(k80_config(VGG16, CAFFE, g)) for g in (2, 3, 4)]
        assert times[0] < times[1] < times[2]

    def test_nvlink_cheaper_than_pcie(self):
        pcie = WorkloadConfig(model=VGG16, framework=TENSORFLOW, gpu=P100_PCIE,
                              gpus_per_learner=4, intra_node=PCIE3)
        nvlink = WorkloadConfig(model=VGG16, framework=TENSORFLOW, gpu=P100_SXM2,
                                gpus_per_learner=4, intra_node=NVLINK)
        assert communication_time(nvlink) < communication_time(pcie)

    def test_bigger_gradients_cost_more(self):
        vgg = k80_config(VGG16, TENSORFLOW, 4)
        inception = k80_config(INCEPTIONV3, TENSORFLOW, 4)
        assert communication_time(vgg) > communication_time(inception)

    def test_multi_gpu_requires_interconnect(self):
        cfg = WorkloadConfig(model=VGG16, framework=CAFFE, gpu=K80,
                             gpus_per_learner=2, intra_node=None)
        with pytest.raises(ValueError):
            communication_time(cfg)

    def test_multi_learner_pays_ethernet(self):
        single = WorkloadConfig(model=RESNET50, framework=HOROVOD, gpu=P100_PCIE,
                                gpus_per_learner=1, learners=1)
        multi = WorkloadConfig(model=RESNET50, framework=HOROVOD, gpu=P100_PCIE,
                               gpus_per_learner=1, learners=4, inter_node=ETH_1G)
        assert communication_time(multi) > communication_time(single)
        assert images_per_sec(multi, DLAAS) < 4 * images_per_sec(single, DLAAS)


class TestScaling:
    def test_near_linear_intra_node_scaling(self):
        ips = [images_per_sec(k80_config(INCEPTIONV3, TENSORFLOW, g), BARE_METAL)
               for g in (1, 2, 4)]
        assert ips[1] > 1.8 * ips[0]
        assert ips[2] > 3.4 * ips[0]
        assert ips[2] < 4.0 * ips[0]  # never superlinear


class TestFig2Shape:
    """DLaaS vs bare metal on K80 (paper Fig. 2): small single-digit
    overheads for every configuration."""

    @pytest.mark.parametrize("model,framework", [(VGG16, CAFFE), (INCEPTIONV3, TENSORFLOW)])
    @pytest.mark.parametrize("gpus", [1, 2, 3, 4])
    def test_overhead_band(self, model, framework, gpus):
        overhead = overhead_percent(k80_config(model, framework, gpus),
                                    DLAAS, BARE_METAL)
        assert 0.0 < overhead < 7.0

    def test_deterministic(self):
        cfg = k80_config(VGG16, CAFFE, 2)
        assert overhead_percent(cfg, DLAAS, BARE_METAL) == \
            overhead_percent(cfg, DLAAS, BARE_METAL)


class TestFig3Shape:
    """DLaaS on PCIe P100 vs DGX-1 (paper Fig. 3)."""

    @staticmethod
    def degradation(model, gpus):
        dlaas_cfg = WorkloadConfig(model=model, framework=TENSORFLOW, gpu=P100_PCIE,
                                   gpus_per_learner=gpus, intra_node=PCIE3)
        dgx_cfg = WorkloadConfig(model=model, framework=TENSORFLOW, gpu=P100_SXM2,
                                 gpus_per_learner=gpus, intra_node=NVLINK)
        return overhead_percent(dlaas_cfg, DLAAS, DGX1, baseline_config=dgx_cfg)

    def test_dgx_always_wins(self):
        for model in (INCEPTIONV3, RESNET50, VGG16):
            for gpus in (1, 2):
                assert self.degradation(model, gpus) > 0

    def test_degradation_at_most_modest(self):
        # Paper: "non-trivial but only modest (up to ~15%)".
        for model in (INCEPTIONV3, RESNET50, VGG16):
            for gpus in (1, 2):
                assert self.degradation(model, gpus) < 17.0

    def test_single_gpu_ordering_matches_bw_sensitivity(self):
        assert (self.degradation(INCEPTIONV3, 1)
                < self.degradation(RESNET50, 1)
                < self.degradation(VGG16, 1))

    def test_vgg_two_gpu_worst_case(self):
        worst = max(self.degradation(m, g)
                    for m in (INCEPTIONV3, RESNET50, VGG16) for g in (1, 2))
        assert worst == self.degradation(VGG16, 2)

    def test_comm_heavy_models_degrade_more_with_gpus(self):
        for model in (RESNET50, VGG16):
            assert self.degradation(model, 2) > self.degradation(model, 1)


class TestInputPipeline:
    def test_streaming_can_bound_step(self):
        # Throttle the input link hard: throughput collapses to line rate.
        cfg = WorkloadConfig(model=INCEPTIONV3, framework=TENSORFLOW, gpu=P100_PCIE,
                             input_bandwidth=1_000_000.0)  # 1 MB/s
        ips = images_per_sec(cfg, BARE_METAL)
        assert ips < 10  # 110KB/image at 1MB/s -> ~9 img/s

    def test_dlaas_input_tax_only_matters_when_bound(self):
        fast = WorkloadConfig(model=INCEPTIONV3, framework=TENSORFLOW, gpu=K80)
        bound = WorkloadConfig(model=INCEPTIONV3, framework=TENSORFLOW, gpu=K80,
                               input_bandwidth=500_000.0)
        unbound_ratio = step_time(fast, DLAAS) / step_time(fast, BARE_METAL)
        bound_ratio = step_time(bound, DLAAS) / step_time(bound, BARE_METAL)
        assert bound_ratio > unbound_ratio


class TestDistributionModes:
    def test_ps_and_ring_move_same_volume(self):
        from repro.frameworks import PYTORCH

        ps = WorkloadConfig(model=RESNET50, framework=TENSORFLOW, gpu=P100_PCIE,
                            learners=4, inter_node=ETH_1G)
        ring = WorkloadConfig(model=RESNET50, framework=PYTORCH, gpu=P100_PCIE,
                              learners=4, inter_node=ETH_1G)
        # TF (parameter-server) pays fewer latency rounds than a ring;
        # at 1GbE + 100MB gradients the bandwidth term dominates, so
        # the difference is small but strictly in PS's favor here.
        ps_comm = communication_time(ps)
        ring_comm = communication_time(ring)
        bandwidth_term = 2 * 3 / 4 * (RESNET50.gradient_mb / 1000) / ETH_1G.allreduce_gb_s
        assert ps_comm < ring_comm or TENSORFLOW.overlap_fraction != PYTORCH.overlap_fraction
        assert ps_comm > bandwidth_term * (1 - TENSORFLOW.overlap_fraction) * 0.9

    def test_nvlink_discounts_sync_overhead(self):
        assert TENSORFLOW.sync_overhead(2, NVLINK) < TENSORFLOW.sync_overhead(2, PCIE3)
        assert TENSORFLOW.sync_overhead(1, PCIE3) == 0.0
