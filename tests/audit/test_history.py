"""Unit tests for the client-history flight recorder."""

import pytest

from repro.audit import HistoryRecorder


class FakeKernel:
    """The recorder only reads ``kernel.now``."""

    def __init__(self):
        self.now = 0.0


@pytest.fixture
def kernel():
    return FakeKernel()


@pytest.fixture
def history(kernel):
    return HistoryRecorder(kernel)


class TestRecording:
    def test_invoke_is_pending(self, history):
        record = history.invoke("c1", "put", "/k", "v1")
        assert record.pending
        assert record.status == "invoke"
        assert record.result is None
        assert record.response_time is None
        assert record.response_seq is None
        assert len(history) == 1

    def test_complete_sets_result_and_response_edge(self, kernel, history):
        record = history.invoke("c1", "get", "/k", None)
        kernel.now = 1.5
        history.complete(record, "v1")
        assert record.status == "ok"
        assert record.result == "v1"
        assert record.response_time == 1.5
        assert record.response_seq > record.invoke_seq
        assert not record.pending

    def test_fail_and_info_record_error_repr(self, history):
        failed = history.invoke("c1", "put", "/k", "v")
        history.fail(failed, error=TimeoutError("deadline"))
        assert failed.status == "fail"
        assert "deadline" in failed.error

        unknown = history.invoke("c1", "put", "/k", "v")
        history.info(unknown)
        assert unknown.status == "info"
        assert unknown.error is None

    def test_double_finish_raises(self, history):
        record = history.invoke("c1", "put", "/k", "v")
        history.complete(record, {"ok": True})
        with pytest.raises(RuntimeError):
            history.fail(record)
        with pytest.raises(RuntimeError):
            history.complete(record, {"ok": True})

    def test_sequence_numbers_are_strictly_increasing(self, history):
        a = history.invoke("c1", "put", "/k", "v1")
        b = history.invoke("c2", "put", "/k", "v2")
        history.complete(a, {"ok": True})
        history.complete(b, {"ok": True})
        seqs = [a.invoke_seq, b.invoke_seq, a.response_seq, b.response_seq]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)

    def test_op_id_tag_carried(self, history):
        record = history.invoke("c1", "put", "/k", "v", op_id=7)
        assert record.op_id == 7
        assert record.to_doc()["op_id"] == 7

    def test_to_doc_round_trips_the_record(self, kernel, history):
        record = history.invoke("c1", "cas", "/k", ("a", "b"), op_id=3)
        kernel.now = 2.0
        record.attempts = 2
        history.complete(record, {"ok": True})
        doc = record.to_doc()
        assert doc == {
            "client": "c1", "op": "cas", "key": "/k", "args": ("a", "b"),
            "op_id": 3, "status": "ok", "result": {"ok": True},
            "error": None, "invoke_time": 0.0,
            "invoke_seq": record.invoke_seq, "response_time": 2.0,
            "response_seq": record.response_seq, "attempts": 2,
        }


class TestQueries:
    def test_per_key_index_preserves_order(self, history):
        a = history.invoke("c1", "put", "/a", "1")
        b = history.invoke("c1", "put", "/b", "1")
        c = history.invoke("c2", "get", "/a", None)
        assert list(history.keys()) == ["/a", "/b"]
        assert history.ops_for_key("/a") == [a, c]
        assert history.ops_for_key("/b") == [b]
        assert history.ops_for_key("/missing") == ()

    def test_counts_by_status(self, history):
        ok = history.invoke("c", "put", "/k", "v")
        history.complete(ok, {"ok": True})
        bad = history.invoke("c", "put", "/k", "v")
        history.fail(bad)
        maybe = history.invoke("c", "put", "/k", "v")
        history.info(maybe)
        history.invoke("c", "get", "/k", None)
        assert history.counts() == {"ok": 1, "fail": 1, "info": 1,
                                    "invoke": 1}


class TestModelScope:
    def test_leased_keys_are_unauditable(self, history):
        assert history.auditable("/jobs/j1")
        history.mark_leased("/jobs/j1")
        assert not history.auditable("/jobs/j1")
        assert history.auditable("/jobs/j2")

    def test_deleted_prefixes_are_unauditable(self, history):
        history.mark_prefix("/watch/")
        history.mark_prefix("/watch/")  # idempotent
        assert not history.auditable("/watch/a")
        assert not history.auditable("/watch/b/c")
        assert history.auditable("/watched")  # not under the prefix
        assert history._unmodeled_prefixes == ["/watch/"]
