"""Unit tests for the online consistency auditor (compaction, latch,
metrics) against a hand-driven recorder."""

import pytest

from repro.audit import ConsistencyAuditor, HistoryRecorder
from repro.audit.auditor import closed_prefix
from repro.sim import MetricsRegistry


class FakeKernel:
    def __init__(self):
        self.now = 0.0


class Harness:
    def __init__(self, max_configs=200_000):
        self.kernel = FakeKernel()
        self.history = HistoryRecorder(self.kernel)
        self.metrics = MetricsRegistry()
        self.auditor = ConsistencyAuditor(self.kernel, self.history,
                                          metrics=self.metrics,
                                          max_configs=max_configs)

    def put(self, value, key="/k", client="c1"):
        record = self.history.invoke(client, "put", key, value)
        self.kernel.now += 1.0
        self.history.complete(record, {"ok": True})
        return record

    def get(self, observed, key="/k", client="c1"):
        record = self.history.invoke(client, "get", key, None)
        self.kernel.now += 1.0
        self.history.complete(record, observed)
        return record

    def checked_total(self):
        return self.metrics.counter(
            "consistency_ops_checked_total").labels().value

    def violations_for(self, key):
        return self.metrics.counter(
            "consistency_violations_total", ("key",)).labels(key=key).value


@pytest.fixture
def h():
    return Harness()


class TestClosedPrefix:
    class Op:
        def __init__(self, invoke_seq, response_seq, status="ok"):
            self.invoke_seq = invoke_seq
            self.response_seq = response_seq
            self.status = status

    def test_sequential_history_is_fully_closed(self):
        ops = [self.Op(0, 1), self.Op(2, 3), self.Op(4, 5)]
        assert closed_prefix(ops) == 3

    def test_all_ok_overlapping_history_is_fully_closed(self):
        # Overlap within an all-ok prefix is fine: every op responded,
        # so the exhaustive check can still compact the whole thing.
        ops = [self.Op(0, 1), self.Op(2, 3), self.Op(4, 7), self.Op(5, 6)]
        assert closed_prefix(ops) == 4

    def test_cut_lands_at_last_quiescent_point_before_info(self):
        # The info op overlaps the preceding ok op, so the cut falls
        # back to the quiescent point before both.
        ops = [self.Op(0, 1), self.Op(2, 3), self.Op(4, 7),
               self.Op(5, None, status="info")]
        assert closed_prefix(ops) == 2

    def test_non_ok_op_blocks_the_cut_forever(self):
        ops = [self.Op(0, 1), self.Op(2, None, status="info"),
               self.Op(4, 5)]
        assert closed_prefix(ops) == 1

    def test_leading_pending_op_means_no_cut(self):
        ops = [self.Op(0, None, status="info"), self.Op(2, 3)]
        assert closed_prefix(ops) == 0


class TestAuditPasses:
    def test_incremental_passes_examine_each_op_once(self, h):
        h.put("v1")
        h.get("v1")
        assert h.auditor.audit_once() == 2
        assert h.auditor.audit_once() == 0  # nothing new
        h.put("v2")
        assert h.auditor.audit_once() == 1
        assert h.auditor.ops_checked == 3
        assert h.checked_total() == 3.0
        assert h.auditor.ok
        assert h.auditor.summary()["passes"] == 3

    def test_states_carry_across_compaction(self, h):
        h.put("v1")
        h.auditor.audit_once()  # compacts the put away
        h.get("v1")  # only legal against the carried state
        h.auditor.audit_once()
        assert h.auditor.ok

    def test_stale_read_after_compaction_still_flagged(self, h):
        h.put("v1")
        h.put("v2")
        h.auditor.audit_once()
        h.get("v1")  # stale relative to the compacted prefix
        h.auditor.audit_once()
        assert not h.auditor.ok
        assert h.auditor.violations[0]["key"] == "/k"

    def test_violation_latches_and_counts_once(self, h):
        h.put("v1")
        h.put("v2")
        h.get("v1")
        h.auditor.audit_once()
        assert not h.auditor.ok
        assert h.violations_for("/k") == 1.0
        before = h.auditor.ops_checked
        h.get("v2")  # flagged key: never examined again
        assert h.auditor.audit_once() == 0
        assert h.auditor.ops_checked == before
        assert h.violations_for("/k") == 1.0
        assert len(h.auditor.violations) == 1
        assert "linearizability violation" in h.auditor.render_violations()

    def test_keys_audited_independently(self, h):
        h.put("a1", key="/a")
        h.put("b1", key="/b")
        h.put("b2", key="/b")
        h.get("b1", key="/b")
        h.auditor.audit_once()
        assert [w["key"] for w in h.auditor.violations] == ["/b"]
        h.get("a1", key="/a")  # the clean key keeps being audited
        assert h.auditor.audit_once() == 1
        assert h.auditor.summary()["violations"] == 1

    def test_unauditable_keys_skipped(self, h):
        h.put("v1", key="/leased")
        h.history.mark_leased("/leased")
        assert h.auditor.audit_once() == 0

    def test_budget_exhaustion_freezes_key_without_violation(self):
        h = Harness(max_configs=5)
        pending = [h.history.invoke(f"c{i}", "put", "/k", f"v{i}")
                   for i in range(10)]
        h.kernel.now += 1.0
        for record in pending:
            h.history.info(record)
        h.get("v0")
        h.auditor.audit_once()
        assert h.auditor.budget_exhausted == ["/k"]
        assert h.auditor.ok  # inconclusive, not a violation
        h.put("v1")
        assert h.auditor.audit_once() == 0  # frozen key
