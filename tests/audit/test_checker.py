"""Unit tests for the linearizability checker (register/CAS/delete model)."""

import pytest

from repro.audit import (
    CheckBudgetExceeded,
    HistoryRecorder,
    check_history,
    check_operations,
    render_witness,
)


class FakeKernel:
    def __init__(self):
        self.now = 0.0


class HistoryBuilder:
    """Sequential-history shorthand over the real recorder, so the
    checker sees exactly the seq numbers production code produces."""

    def __init__(self):
        self.kernel = FakeKernel()
        self.history = HistoryRecorder(self.kernel)

    def tick(self):
        self.kernel.now += 1.0

    def invoke(self, client, op, key="/k", args=None):
        self.tick()
        return self.history.invoke(client, op, key, args)

    def op(self, client, op, args=None, result=None, key="/k",
           status="ok"):
        """One non-overlapping op: invoke and finish immediately."""
        record = self.invoke(client, op, key, args)
        self.tick()
        if status == "ok":
            self.history.complete(record, result)
        elif status == "fail":
            self.history.fail(record)
        else:
            self.history.info(record)
        return record

    def put(self, value, client="c1", **kw):
        return self.op(client, "put", args=value, result={"ok": True}, **kw)

    def get(self, observed, client="c1", **kw):
        return self.op(client, "get", result=observed, **kw)

    def cas(self, expected, new, result, client="c1", **kw):
        return self.op(client, "cas", args=(expected, new), result=result,
                       **kw)

    def delete(self, deleted, client="c1", **kw):
        return self.op(client, "delete", result={"deleted": deleted}, **kw)

    def ops(self, key="/k"):
        return self.history.ops_for_key(key)


@pytest.fixture
def h():
    return HistoryBuilder()


class TestSequentialHistories:
    def test_empty_history_is_linearizable(self):
        outcome = check_operations([])
        assert outcome.ok
        assert outcome.ops_considered == 0

    def test_put_get_cas_delete_chain(self, h):
        h.get(None)
        h.put("v1")
        h.get("v1")
        h.cas("v1", "v2", {"ok": True})
        h.get("v2")
        h.delete(True)
        h.get(None)
        assert check_operations(h.ops()).ok

    def test_failed_cas_reports_actual(self, h):
        h.put("v1")
        h.cas("other", "v2", {"ok": False, "actual": "v1"})
        h.get("v1")
        assert check_operations(h.ops()).ok

    def test_failed_cas_with_wrong_actual_rejected(self, h):
        h.put("v1")
        h.cas("other", "v2", {"ok": False, "actual": "v9"})
        assert not check_operations(h.ops()).ok

    def test_delete_of_absent_key_observes_not_deleted(self, h):
        h.delete(False)
        h.put("v1")
        h.delete(True)
        assert check_operations(h.ops()).ok

    def test_stale_read_detected(self, h):
        h.put("v1")
        h.put("v2")
        h.get("v1")  # observed after put(v2) responded: stale
        outcome = check_operations(h.ops())
        assert not outcome.ok
        assert outcome.witness is not None

    def test_lost_write_detected(self, h):
        h.put("v1")
        h.cas("v1", "v2", {"ok": True})
        h.get("v1")  # cas succeeded, then vanished
        assert not check_operations(h.ops()).ok

    def test_unhashable_register_values_supported(self, h):
        # Platform clients store dicts (job docs) in etcd; the model
        # compares them by value and hashes a frozen form internally.
        h.put({"status": "RUNNING", "n": 1})
        h.get({"n": 1, "status": "RUNNING"})  # equal, different order
        outcome = check_operations(h.ops(), collect_final=True)
        assert outcome.ok
        assert outcome.final_states == ({"status": "RUNNING", "n": 1},)
        h.get({"status": "FAILED", "n": 1})
        assert not check_operations(h.ops()).ok

    def test_initial_states_constrain_the_first_op(self, h):
        h.get("carried")
        assert not check_operations(h.ops()).ok
        assert check_operations(h.ops(), initial_states=("carried",)).ok
        assert check_operations(h.ops(),
                                initial_states=(None, "carried")).ok


class TestConcurrency:
    def test_concurrent_puts_allow_either_order(self, h):
        a = h.invoke("c1", "put", args="v1")
        b = h.invoke("c2", "put", args="v2")
        h.tick()
        h.history.complete(a, {"ok": True})
        h.tick()
        h.history.complete(b, {"ok": True})
        h.get("v1", client="c3")  # b linearizes first, then a
        assert check_operations(h.ops()).ok

    def test_non_overlapping_order_is_enforced(self, h):
        # Same ops, but strictly sequential: put(v2) cannot move
        # before put(v1) anymore, so a later get(v1) is stale.
        h.put("v1", client="c1")
        h.put("v2", client="c2")
        h.get("v1", client="c3")
        assert not check_operations(h.ops()).ok

    def test_read_concurrent_with_write_sees_either_value(self, h):
        h.put("v1")
        w = h.invoke("c1", "put", args="v2")
        r1 = h.invoke("c2", "get")
        h.tick()
        h.history.complete(r1, "v1")  # before the write applied
        r2 = h.invoke("c3", "get")
        h.tick()
        h.history.complete(r2, "v2")  # after it applied
        h.tick()
        h.history.complete(w, {"ok": True})
        assert check_operations(h.ops()).ok


class TestMaybeApplied:
    def test_info_write_may_apply(self, h):
        h.put("v1")
        h.op("c2", "put", args="v2", status="info")
        h.get("v2")  # only explicable if the lost write applied
        assert check_operations(h.ops()).ok

    def test_info_write_may_never_apply(self, h):
        h.put("v1")
        h.op("c2", "put", args="v2", status="info")
        h.get("v1")
        h.get("v1")
        assert check_operations(h.ops()).ok

    def test_info_write_cannot_unapply(self, h):
        h.put("v1")
        h.op("c2", "put", args="v2", status="info")
        h.get("v2")
        h.get("v1")  # v2 observed, then v1 again with no writer: stale
        assert not check_operations(h.ops()).ok

    def test_info_cas_transitions_conditionally(self, h):
        h.put("v1")
        h.op("c2", "cas", args=("v1", "v2"), status="info")
        h.get("v2")
        assert check_operations(h.ops()).ok

    def test_failed_ops_constrain_nothing(self, h):
        h.put("v1")
        h.op("c2", "put", args="v9", status="fail")
        h.get("v1")
        outcome = check_operations(h.ops())
        assert outcome.ok
        assert outcome.ops_considered == 2  # the fail was dropped

    def test_indeterminate_reads_are_dropped(self, h):
        h.put("v1")
        h.invoke("c2", "get")  # never completes
        h.op("c3", "get", status="info")
        h.get("v1")
        outcome = check_operations(h.ops())
        assert outcome.ok
        assert outcome.ops_considered == 2


class TestFinalStates:
    def test_collect_final_enumerates_end_states(self, h):
        h.put("v1")
        a = h.invoke("c1", "put", args="v2")
        b = h.invoke("c2", "put", args="v3")
        h.tick()
        h.history.complete(a, {"ok": True})
        h.tick()
        h.history.complete(b, {"ok": True})
        outcome = check_operations(h.ops(), collect_final=True)
        assert outcome.ok
        assert set(outcome.final_states) == {"v2", "v3"}

    def test_collect_final_requires_all_ok(self, h):
        h.put("v1")
        h.op("c2", "put", args="v2", status="info")
        with pytest.raises(ValueError):
            check_operations(h.ops(), collect_final=True)

    def test_collect_final_empty_segment_keeps_initials(self):
        outcome = check_operations([], initial_states=("a", "b"),
                                   collect_final=True)
        assert outcome.ok
        assert set(outcome.final_states) == {"a", "b"}


class TestBudgetAndWitness:
    def test_budget_exceeded_raises(self, h):
        # Many pairwise-concurrent maybe-applied writes: the config
        # space explodes and must hit the cap instead of hanging.
        pending = [h.invoke(f"c{i}", "put", args=f"v{i}")
                   for i in range(12)]
        h.tick()
        for record in pending:
            h.history.info(record)
        h.get("v0", client="r")
        with pytest.raises(CheckBudgetExceeded):
            check_operations(h.ops(), max_configs=50)

    def test_witness_is_minimized(self, h):
        h.put("v1")
        h.put("v2")
        h.get("v0")  # a value nobody ever wrote
        outcome = check_operations(h.ops())
        assert not outcome.ok
        # The impossible get alone suffices; both puts drop out.
        assert len(outcome.witness["ops"]) == 1
        assert outcome.witness["ops"][0]["op"] == "get"

    def test_minimize_can_be_disabled(self, h):
        h.put("v1")
        h.put("v2")
        h.get("v0")
        outcome = check_operations(h.ops(), minimize=False)
        assert not outcome.ok
        assert len(outcome.witness["ops"]) == 3

    def test_witness_reports_prefix_and_stuck_reason(self, h):
        h.put("v1")
        h.put("v2")
        h.get("v1")
        outcome = check_operations(h.ops(), minimize=False)
        witness = outcome.witness
        assert witness["key"] == "/k"
        assert len(witness["linearized"]) == 2
        assert witness["final_state"] == "v2"
        assert witness["stuck"]
        assert "observed" in witness["stuck"][0]["reason"]

    def test_render_witness_smoke(self, h):
        h.put("v1")
        h.put("v2")
        h.get("v1")
        text = render_witness(check_operations(h.ops()).witness)
        assert "linearizability violation" in text
        assert "'/k'" in text
        assert "no remaining operation can linearize next" in text


class TestCheckHistory:
    def test_multiple_keys_checked_independently(self, h):
        h.put("a1", key="/a")
        h.get("a1", key="/a")
        h.put("b1", key="/b")
        h.put("b2", key="/b")
        h.get("b1", key="/b")  # stale
        result = check_history(h.history)
        assert not result.ok
        assert result.keys_checked == 2
        assert result.ops_checked == 5
        assert [w["key"] for w in result.violations] == ["/b"]

    def test_unauditable_keys_are_skipped(self, h):
        h.put("b1", key="/b")
        h.put("b2", key="/b")
        h.get("b1", key="/b")  # stale, but out of model scope
        h.history.mark_leased("/b")
        result = check_history(h.history)
        assert result.ok
        assert result.keys_checked == 0
