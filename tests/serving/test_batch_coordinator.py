"""BatchCoordinator: lease bookkeeping and exactly-once accounting."""

import pytest

from repro.serving import BatchCoordinator, BatchInferManifest
from repro.serving.batch import SHARD_DONE, SHARD_LEASED, SHARD_PENDING


def batch_manifest(**overrides):
    base = {
        "name": "score-all",
        "framework": "tensorflow",
        "model": "resnet50",
        "gpu_type": "k80",
        "items": 250,
        "shard_size": 100,
        "workers": 2,
    }
    base.update(overrides)
    return BatchInferManifest.from_dict(base)


@pytest.fixture
def coordinator(stub_platform):
    return BatchCoordinator(stub_platform, "b1", batch_manifest())


class TestLeasing:
    def test_shard_partitioning(self, coordinator):
        assert [s.items for s in coordinator.shards] == [100, 100, 50]

    def test_lease_order_and_exhaustion(self, coordinator):
        first = coordinator.lease("w1")
        second = coordinator.lease("w2")
        third = coordinator.lease("w1")
        assert (first.index, second.index, third.index) == (0, 1, 2)
        assert coordinator.lease("w3") is None
        assert all(s.state == SHARD_LEASED for s in coordinator.shards)

    def test_renew_extends_only_for_holder(self, coordinator, kernel):
        shard = coordinator.lease("w1")
        original_expiry = shard.lease_expires
        kernel.run(until=5.0)
        coordinator.renew(shard, "w2")  # not the holder: ignored
        assert shard.lease_expires == original_expiry
        coordinator.renew(shard, "w1")
        assert shard.lease_expires == kernel.now + coordinator.lease_timeout


class TestExactlyOnce:
    def test_first_completion_wins(self, coordinator):
        shard = coordinator.lease("w1")
        assert coordinator.complete(shard, "w1") is True
        assert shard.state == SHARD_DONE
        # A zombie worker reporting the same shard again is ignored.
        assert coordinator.complete(shard, "w1") is False
        assert coordinator.completed == 1
        assert coordinator.duplicates == 1
        assert shard.completions == 2

    def test_done_after_every_shard(self, coordinator):
        while not coordinator.done:
            coordinator.complete(coordinator.lease("w1"), "w1")
        assert coordinator.completed == len(coordinator.shards)
        assert coordinator.duplicates == 0

    def test_completion_event_reports_totals(self, stub_platform):
        coordinator = BatchCoordinator(stub_platform, "b1",
                                       batch_manifest(items=100))
        coordinator.complete(coordinator.lease("w1"), "w1")
        event = stub_platform.events.get(
            "Normal", "BatchInferCompleted", "BatchInfer", "b1")
        assert event is not None
        assert "1 shards done" in event.message


class TestLeaseRecovery:
    def test_expiry_requeues(self, coordinator, kernel):
        shard = coordinator.lease("w1")
        assert coordinator.expire_leases() == 0  # still fresh
        kernel.run(until=coordinator.lease_timeout + 1.0)
        assert coordinator.expire_leases() == 1
        assert shard.state == SHARD_PENDING
        assert shard.holder is None
        assert coordinator.requeues == 1

    def test_release_requeues_immediately(self, coordinator):
        coordinator.lease("w1")
        coordinator.lease("w1")
        kept = coordinator.lease("w2")
        coordinator.release("w1")
        pending = [s for s in coordinator.shards if s.state == SHARD_PENDING]
        assert len(pending) == 2
        assert kept.state == SHARD_LEASED
        assert coordinator.requeues == 2

    def test_requeue_emits_warning_event(self, coordinator, stub_platform,
                                         kernel):
        coordinator.lease("w1")
        kernel.run(until=coordinator.lease_timeout + 1.0)
        coordinator.expire_leases()
        event = stub_platform.events.get(
            "Warning", "BatchShardRequeued", "BatchInfer", "b1")
        assert event is not None
        assert "lease expired" in event.message

    def test_wait_for_work_wakes_on_requeue(self, coordinator, kernel):
        shard = coordinator.lease("w1")
        woken = []

        def waiter():
            yield coordinator.wait_for_work()
            woken.append(kernel.now)

        kernel.spawn(waiter())
        kernel.run(until=5.0)
        assert not woken  # nothing requeued yet
        coordinator.release("w1")
        kernel.run(until=6.0)
        assert woken
        assert shard.state == SHARD_PENDING


class TestStallDetection:
    def test_stalled_gauge_tracks_idle_time(self, coordinator, kernel,
                                            metrics):
        kernel.run(until=30.0)
        coordinator.expire_leases()
        gauge = metrics.gauge("batchinfer_stalled_seconds", ("batch",))
        assert gauge.labels(batch="b1").value == 30.0

    def test_completion_resets_stall_clock(self, coordinator, kernel,
                                           metrics):
        kernel.run(until=30.0)
        coordinator.complete(coordinator.lease("w1"), "w1")
        coordinator.expire_leases()
        gauge = metrics.gauge("batchinfer_stalled_seconds", ("batch",))
        assert gauge.labels(batch="b1").value == 0.0
