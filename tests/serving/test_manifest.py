"""ServingManifest / BatchInferManifest validation."""

import pytest

from repro.core.errors import InvalidManifest
from repro.serving import BatchInferManifest, ServingManifest

GOOD_MODEL = {
    "name": "classifier",
    "framework": "tensorflow",
    "model": "resnet50",
    "gpu_type": "k80",
    "min_replicas": 1,
    "max_replicas": 4,
    "slo_p99": 0.3,
}

GOOD_BATCH = {
    "name": "score-all",
    "framework": "tensorflow",
    "model": "resnet50",
    "gpu_type": "k80",
    "items": 350,
    "shard_size": 100,
    "workers": 2,
}


class TestServingManifest:
    def test_round_trip(self):
        manifest = ServingManifest.from_dict(GOOD_MODEL)
        assert manifest.name == "classifier"
        assert manifest.max_replicas == 4
        again = ServingManifest.from_dict(manifest.to_dict())
        assert again.to_dict() == manifest.to_dict()

    def test_defaults_applied(self):
        manifest = ServingManifest.from_dict(GOOD_MODEL)
        assert manifest.gpus_per_replica == 1
        assert manifest.max_batch >= 1
        assert manifest.priority > 0  # serving outranks default training

    def test_problems_collected(self):
        bad = dict(GOOD_MODEL, framework="caffe3", gpu_type="tpu",
                   max_replicas=0)
        bad.pop("name")
        with pytest.raises(InvalidManifest) as err:
            ServingManifest.from_dict(bad)
        assert len(err.value.problems) >= 4

    def test_replica_bounds_ordered(self):
        with pytest.raises(InvalidManifest):
            ServingManifest.from_dict(
                dict(GOOD_MODEL, min_replicas=4, max_replicas=2))

    def test_not_a_dict(self):
        with pytest.raises(InvalidManifest):
            ServingManifest.from_dict(None)


class TestBatchInferManifest:
    def test_shard_count(self):
        manifest = BatchInferManifest.from_dict(GOOD_BATCH)
        assert manifest.shard_count == 4  # 350 items / 100 per shard

    def test_problems_collected(self):
        with pytest.raises(InvalidManifest) as err:
            BatchInferManifest.from_dict(
                dict(GOOD_BATCH, items=0, workers=-1))
        assert len(err.value.problems) >= 2

    def test_batch_defaults_to_training_priority(self):
        manifest = BatchInferManifest.from_dict(GOOD_BATCH)
        assert manifest.priority == 0
