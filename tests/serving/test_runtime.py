"""ServingRuntime data-plane unit tests."""

from .conftest import model_manifest


class TestRouting:
    def test_backlog_until_first_replica(self, kernel, runtime):
        runtime.ensure_model("m1", model_manifest())
        runtime.dispatch("m1", count=3)
        assert runtime.stats("m1")["queue_depth"] == 3
        handle = runtime.register_replica("m1", "r1")
        # Backlog drained into the fresh replica's queue.
        assert len(handle.queue) == 3
        assert runtime.stats("m1")["queue_depth"] == 3  # queued, not lost

    def test_least_loaded_routing(self, kernel, runtime):
        runtime.ensure_model("m1", model_manifest())
        a = runtime.register_replica("m1", "a")
        b = runtime.register_replica("m1", "b")
        a.queue.extend([0.0, 0.0, 0.0])
        runtime.dispatch("m1", count=2)
        assert len(b.queue) == 2  # both land on the emptier replica

    def test_deregister_reroutes_queue(self, kernel, runtime):
        runtime.ensure_model("m1", model_manifest())
        a = runtime.register_replica("m1", "a")
        b = runtime.register_replica("m1", "b")
        runtime.dispatch("m1", count=4)
        queued_on_a = len(a.queue)
        runtime.deregister_replica("m1", a)
        stats = runtime.stats("m1")
        assert stats["replicas"] == 1
        assert stats["queue_depth"] == 4  # nothing lost
        assert len(b.queue) == 4
        assert stats["redispatched"] == queued_on_a

    def test_deregister_last_replica_parks_backlog(self, kernel, runtime):
        runtime.ensure_model("m1", model_manifest())
        a = runtime.register_replica("m1", "a")
        runtime.dispatch("m1", count=2)
        runtime.deregister_replica("m1", a)
        assert runtime.stats("m1")["queue_depth"] == 2
        b = runtime.register_replica("m1", "b")
        assert len(b.queue) == 2

    def test_stale_handle_deregister_is_noop(self, kernel, runtime):
        runtime.ensure_model("m1", model_manifest())
        old = runtime.register_replica("m1", "a")
        runtime.deregister_replica("m1", old)
        new = runtime.register_replica("m1", "a")  # restarted pod, same name
        runtime.deregister_replica("m1", old)  # late teardown of the old one
        assert runtime.replica_count("m1") == 1
        assert runtime._models["m1"].replicas["a"] is new


class TestAccounting:
    def test_slo_accounting(self, kernel, runtime):
        runtime.ensure_model("m1", model_manifest(slo_p99=0.25))
        handle = runtime.register_replica("m1", "a")

        def driver():
            runtime.dispatch("m1", count=2)  # arrivals at t=0
            yield kernel.sleep(0.1)
            runtime.complete("m1", runtime.take_batch("m1", handle, 1))
            yield kernel.sleep(0.4)  # second one completes at 0.5 > SLO
            runtime.complete("m1", runtime.take_batch("m1", handle, 1))

        kernel.run_until_complete(kernel.spawn(driver()), limit=10.0)
        stats = runtime.stats("m1")
        assert stats["completed"] == 2
        assert stats["slo_ok"] == 1
        assert runtime.slo_attainment("m1") == 0.5

    def test_window_prunes_old_samples(self, kernel, runtime):
        runtime.ensure_model("m1", model_manifest())
        handle = runtime.register_replica("m1", "a")

        def driver():
            runtime.dispatch("m1")
            runtime.complete("m1", runtime.take_batch("m1", handle, 8))
            yield kernel.sleep(30.0)  # > latency_window of 20s

        kernel.run_until_complete(kernel.spawn(driver()), limit=60.0)
        stats = runtime.stats("m1")
        assert stats["window_samples"] == 0
        assert stats["window_p99"] is None
        assert stats["completed"] == 1  # lifetime counters are kept

    def test_attainment_none_before_any_completion(self, kernel, runtime):
        runtime.ensure_model("m1", model_manifest())
        assert runtime.slo_attainment("m1") is None
