"""Fixtures for serving-subsystem unit tests (no full platform)."""

from types import SimpleNamespace

import pytest

from repro.core.events import EventRecorder
from repro.serving import ServingManifest, ServingRuntime
from repro.sim import Kernel
from repro.sim.metrics import MetricsRegistry


@pytest.fixture
def kernel():
    return Kernel(seed=5)


@pytest.fixture
def metrics():
    return MetricsRegistry()


@pytest.fixture
def events(kernel):
    return EventRecorder(kernel)


@pytest.fixture
def runtime(kernel, metrics, events):
    return ServingRuntime(kernel, metrics, events, latency_window=20.0)


def model_manifest(**overrides):
    base = {
        "name": "unit-model",
        "framework": "tensorflow",
        "model": "resnet50",
        "gpu_type": "k80",
        "slo_p99": 0.25,
    }
    base.update(overrides)
    return ServingManifest.from_dict(base)


@pytest.fixture
def stub_platform(kernel, metrics, events, runtime):
    """Just enough platform surface for runtime-level components."""
    from repro.core import PlatformConfig

    return SimpleNamespace(kernel=kernel, metrics=metrics, events=events,
                           serving=runtime, config=PlatformConfig())


def make_serving_platform(seed=7, serving=True, **config_overrides):
    """A small full platform with the serving plane switched on."""
    from repro import DlaasPlatform
    from repro.core import PlatformConfig

    defaults = dict(gpu_nodes=2, gpus_per_node=4, management_nodes=2,
                    serving=serving)
    defaults.update(config_overrides)
    platform = DlaasPlatform(seed=seed, config=PlatformConfig(**defaults))
    platform.start()
    return platform


def api_manifest(**overrides):
    """A model manifest as a tenant would POST it."""
    base = {
        "name": "classifier",
        "framework": "tensorflow",
        "model": "resnet50",
        "gpu_type": "k80",
        "min_replicas": 1,
        "max_replicas": 3,
        "slo_p99": 0.25,
    }
    base.update(overrides)
    return base
