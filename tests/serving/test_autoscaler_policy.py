"""plan_scaling: the autoscaler's pure decision function."""

from .conftest import model_manifest

from repro.serving import plan_scaling

NEVER = float("-inf")


def plan(**overrides):
    base = dict(replicas=2, p99=0.1, queue_depth=0,
                manifest=model_manifest(min_replicas=1, max_replicas=8,
                                        slo_p99=0.25),
                now=100.0, last_scale_up=NEVER, last_scale_down=NEVER,
                queue_high=16.0, up_cooldown=5.0, down_cooldown=60.0)
    base.update(overrides)
    return plan_scaling(**base)


class TestScaleUp:
    def test_latency_breach_adds_half_fleet(self):
        assert plan(replicas=4, p99=0.3) == 6

    def test_single_replica_breach_adds_one(self):
        assert plan(replicas=1, p99=0.3) == 2

    def test_queue_breach_without_latency_signal(self):
        # Per-replica watermark: 40 queued > 16 * 2 replicas.
        assert plan(replicas=2, p99=None, queue_depth=40) == 3

    def test_capped_at_max_replicas(self):
        assert plan(replicas=7, p99=0.3) == 8
        assert plan(replicas=8, p99=0.3) is None

    def test_up_cooldown_blocks(self):
        assert plan(p99=0.3, now=100.0, last_scale_up=97.0) is None
        assert plan(p99=0.3, now=100.0, last_scale_up=90.0) == 3


class TestScaleDown:
    def test_calm_removes_one(self):
        assert plan(replicas=3, p99=0.05, queue_depth=0) == 2

    def test_never_below_min(self):
        assert plan(replicas=1, p99=0.05) is None

    def test_down_cooldown_blocks(self):
        assert plan(replicas=3, p99=0.05, now=100.0,
                    last_scale_down=50.0) is None

    def test_recent_scale_up_blocks_down(self):
        # A burst just ended: do not flap straight back down.
        assert plan(replicas=3, p99=0.05, now=100.0,
                    last_scale_up=50.0) is None

    def test_no_latency_data_counts_as_calm(self):
        assert plan(replicas=2, p99=None, queue_depth=0) == 1


class TestHold:
    def test_mid_band_holds(self):
        # p99 between half the SLO and the SLO: neither breach nor calm.
        assert plan(replicas=2, p99=0.2) is None

    def test_queue_at_watermark_holds(self):
        assert plan(replicas=2, p99=0.2, queue_depth=32) is None
