"""Traffic profiles and the open-loop generator."""

import math

from .conftest import model_manifest

from repro.serving import (
    BurstProfile,
    ConstantProfile,
    DiurnalProfile,
    ServingRuntime,
    TrafficGenerator,
)
from repro.sim import Kernel
from repro.sim.metrics import MetricsRegistry


class TestProfiles:
    def test_constant(self):
        assert ConstantProfile(12.5).rate(0) == 12.5
        assert ConstantProfile(12.5).rate(1e6) == 12.5

    def test_diurnal_base_and_peak(self):
        profile = DiurnalProfile(base_rate=10.0, peak_rate=40.0, period=240.0)
        assert math.isclose(profile.rate(0.0), 10.0)
        assert math.isclose(profile.rate(120.0), 40.0)
        assert math.isclose(profile.rate(240.0), 10.0, abs_tol=1e-9)
        mid = profile.rate(60.0)
        assert 10.0 < mid < 40.0

    def test_burst_window(self):
        profile = BurstProfile(base_rate=5.0, burst_rate=100.0,
                               burst_start=60.0, burst_duration=30.0)
        assert profile.rate(59.9) == 5.0
        assert profile.rate(60.0) == 100.0
        assert profile.rate(89.9) == 100.0
        assert profile.rate(90.0) == 5.0


def drive(seed, duration=60.0, rate=10.0):
    from types import SimpleNamespace

    kernel = Kernel(seed=seed)
    runtime = ServingRuntime(kernel, MetricsRegistry(), None)
    runtime.ensure_model("m1", model_manifest())
    platform = SimpleNamespace(kernel=kernel, serving=runtime)
    generator = TrafficGenerator(platform, "m1", ConstantProfile(rate))
    kernel.run_until_complete(kernel.spawn(generator.run(duration)),
                              limit=duration * 2)
    return generator.sent, kernel.now


class TestGenerator:
    def test_open_loop_poisson_count(self):
        sent, now = drive(seed=3)
        # ~600 expected; 5 sigma is ~120.
        assert 450 <= sent <= 750
        assert math.isclose(now, 60.0)

    def test_deterministic_per_seed(self):
        assert drive(seed=11) == drive(seed=11)

    def test_seed_changes_arrivals(self):
        assert drive(seed=11)[0] != drive(seed=12)[0]

    def test_zero_rate_emits_nothing(self):
        sent, _now = drive(seed=3, rate=0.0)
        assert sent == 0
