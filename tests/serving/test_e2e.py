"""End-to-end serving tests on a full platform.

Covers the REST/RPC lifecycle, tenancy isolation, the serving=False
gate, manager crash/restart convergence, and the health probe.
"""

import pytest

from repro.core import RestClient
from repro.core.errors import ServingDisabled

from .conftest import api_manifest, make_serving_platform

MANAGER_LABELS = {"dlaas": "core", "app": "serving"}


def rest_client(platform, tenant="team-a"):
    token = platform.tokens.create_tenant(tenant)
    return RestClient(platform, token)


def manager_pods(platform):
    return [pod for pod in platform.k8s.api.list("Pod")
            if pod.metadata.labels.get("app") == "serving"
            and pod.phase == "Running"]


class TestServingDisabledGate:
    def test_client_call_raises(self):
        platform = make_serving_platform(serving=False)
        client = platform.client("team-a")

        def scenario():
            model_id = yield from client.create_model(api_manifest())
            return model_id

        with pytest.raises(ServingDisabled):
            platform.run_process(scenario(), limit=600)

    def test_rest_post_is_503(self):
        platform = make_serving_platform(serving=False)
        rest = rest_client(platform)
        response = platform.run_process(
            rest.post("/models", api_manifest()), limit=600)
        assert response["status"] == 503

    def test_no_serving_constructs_exist(self):
        platform = make_serving_platform(serving=False)
        assert platform.serving is None
        assert platform.serving_balancer is None
        assert platform.k8s.api.get_or_none("Deployment",
                                            "dlaas-serving") is None
        assert "serving" not in platform.health.snapshot()["components"]


class TestRestLifecycle:
    def test_create_get_list_delete(self):
        platform = make_serving_platform()
        rest = rest_client(platform)

        def scenario():
            response = yield from rest.post("/models", api_manifest())
            assert response["status"] == 201
            model_id = response["body"]["model_id"]

            listing = yield from rest.get("/models")
            assert listing["status"] == 200
            assert [m["model_id"] for m in listing["body"]] == [model_id]

            # Let the reconciler bring a replica up, then read it back.
            while True:
                doc = (yield from rest.get(f"/models/{model_id}"))["body"]
                if doc.get("ready_replicas", 0) >= 1:
                    break
                yield platform.kernel.sleep(2.0)
            assert doc["status"] == "ACTIVE"
            assert doc["name"] == "classifier"

            response = yield from rest.delete(f"/models/{model_id}")
            assert response["status"] == 200
            while True:
                doc = (yield from rest.get(f"/models/{model_id}"))["body"]
                if doc["status"] == "DELETED":
                    return model_id
                yield platform.kernel.sleep(2.0)

        model_id = platform.run_process(scenario(), limit=10_000)
        # Deployment and replica pods are gone.
        assert platform.k8s.api.get_or_none(
            "Deployment", f"serving-{model_id}") is None
        assert platform.events.get("Normal", "ServingModelDeleted",
                                   "Model", model_id) is not None

    def test_invalid_manifest_is_400(self):
        platform = make_serving_platform()
        rest = rest_client(platform)
        bad = api_manifest(min_replicas=5, max_replicas=2)
        response = platform.run_process(rest.post("/models", bad), limit=600)
        assert response["status"] == 400

    def test_unknown_model_is_404(self):
        platform = make_serving_platform()
        rest = rest_client(platform)
        response = platform.run_process(rest.get("/models/model-9999"),
                                        limit=600)
        assert response["status"] == 404


class TestTenancy:
    def test_models_are_tenant_scoped(self):
        platform = make_serving_platform()
        owner = rest_client(platform, "team-a")
        intruder = rest_client(platform, "team-b")

        def scenario():
            response = yield from owner.post("/models", api_manifest())
            model_id = response["body"]["model_id"]
            stolen = yield from intruder.get(f"/models/{model_id}")
            deleted = yield from intruder.delete(f"/models/{model_id}")
            their_list = yield from intruder.get("/models")
            return stolen, deleted, their_list

        stolen, deleted, their_list = platform.run_process(scenario(),
                                                           limit=600)
        assert stolen["status"] == 404
        assert deleted["status"] == 404
        assert their_list["body"] == []


class TestManagerDependability:
    def test_delete_during_manager_outage_converges(self):
        """Kill the manager, delete the model while the notify RPC has
        nowhere to land, and check the restarted manager's resync still
        drives DELETING -> DELETED."""
        platform = make_serving_platform()
        client = platform.client("team-a")

        def scenario():
            model_id = yield from client.create_model(api_manifest())
            yield from client.wait_for_model_ready(model_id, replicas=1,
                                                   timeout=600.0)

            victims = manager_pods(platform)
            assert victims, "no running serving manager pod"
            platform.k8s.kubectl.delete_pod(victims[0].metadata.name,
                                            force=True)

            # The notify RPC is lost; the durable write must carry it.
            yield from client.delete_model(model_id)

            while True:
                doc = yield from client.get_model(model_id)
                if doc["status"] == "DELETED":
                    return model_id
                yield platform.kernel.sleep(2.0)

        model_id = platform.run_process(scenario(), limit=20_000)
        assert platform.k8s.api.get_or_none(
            "Deployment", f"serving-{model_id}") is None
        # The controller replaced the killed manager pod.
        assert manager_pods(platform)


class TestHealthProbe:
    def test_serving_probe_reports_ok(self):
        platform = make_serving_platform()

        def scenario():
            yield platform.kernel.sleep(60.0)
            return platform.health.snapshot(), dict(platform.health.up_samples())

        snapshot, up = platform.run_process(scenario(), limit=600)
        assert snapshot["components"]["serving"]["status"] == "ok"
        assert up["serving"] == 1.0

    def test_manager_loss_flips_probe(self):
        platform = make_serving_platform()

        def status():
            return platform.health.snapshot()["components"]["serving"]["status"]

        def wait_for(scenario_status):
            for _ in range(120):
                if status() == scenario_status:
                    return platform.kernel.now
                yield platform.kernel.sleep(1.0)
            raise AssertionError(f"probe never reached {scenario_status!r}")

        def scenario():
            yield platform.kernel.sleep(30.0)
            for pod in manager_pods(platform):
                platform.k8s.kubectl.delete_pod(pod.metadata.name, force=True)
            # Teardown deregisters the endpoint: the probe dips...
            down_at = yield from wait_for("down")
            # ...and the Deployment controller's replacement restores it.
            up_at = yield from wait_for("ok")
            return down_at, up_at

        down_at, up_at = platform.run_process(scenario(), limit=10_000)
        assert down_at < up_at
        assert up_at - down_at < 60.0  # replacement, not a manual fix
