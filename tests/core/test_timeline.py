"""Unit tests for the job timeline tool."""

from repro.core import job_timeline, render_timeline


class FakePlatform:
    """Just enough platform surface for timeline assembly."""

    class _K8s:
        class _Api:
            def __init__(self):
                self.events = []

        def __init__(self):
            self.api = self._Api()

    def __init__(self, tracer):
        self.tracer = tracer
        self.k8s = self._K8s()


def make_platform():
    from repro.sim import Kernel, Tracer

    kernel = Kernel()
    return FakePlatform(Tracer(kernel)), kernel


class TestJobTimeline:
    def test_merges_sources_in_time_order(self):
        platform, kernel = make_platform()
        platform.tracer.emit("guardian", "component-ready", job="job-1")

        def later():
            yield kernel.sleep(5.0)
            platform.tracer.emit("learner-0", "learner-exit", job="job-1",
                                 exit_code=0)

        kernel.spawn(later())
        kernel.run()
        from repro.cluster.apiserver import ClusterEvent

        platform.k8s.api.events.append(
            ClusterEvent(2.0, "Pod", "job-1-learner-0", "Scheduled", "gpu-0"))
        doc = {"status_history": [{"status": "QUEUED", "time": 0.5}]}

        entries = job_timeline(platform, "job-1", status_doc=doc)
        times = [t for t, _s, _x in entries]
        assert times == sorted(times)
        sources = [s for _t, s, _x in entries]
        # guardian fired at t=0, status recorded at t=0.5.
        assert sources == ["guardian", "status", "k8s:pod", "learner-0"]

    def test_other_jobs_excluded(self):
        platform, _kernel = make_platform()
        platform.tracer.emit("guardian", "component-ready", job="job-1")
        platform.tracer.emit("guardian", "component-ready", job="job-2")
        entries = job_timeline(platform, "job-1")
        assert len(entries) == 1

    def test_render_elides_middle(self):
        platform, _kernel = make_platform()
        for i in range(40):
            platform.tracer.emit("c", "event", job="j", n=i)
        text = render_timeline(job_timeline(platform, "j"), limit=10)
        assert "elided" in text
        assert text.count("\n") <= 12

    def test_elision_keeps_exact_head_and_tail(self):
        entries = [(float(i), "c", f"event-{i}") for i in range(20)]
        lines = render_timeline(entries, limit=7).splitlines()
        # limit=7 -> first 3, one marker, last 4; 13 entries elided.
        assert len(lines) == 8
        shown = [line.split()[-1] for line in lines]
        assert shown[:3] == ["event-0", "event-1", "event-2"]
        assert shown[4:] == ["event-16", "event-17", "event-18", "event-19"]
        assert "... 13 events elided ..." in lines[3]

    def test_elision_limit_zero_shows_only_marker(self):
        entries = [(float(i), "c", f"event-{i}") for i in range(5)]
        lines = render_timeline(entries, limit=0).splitlines()
        assert lines == [f"{'':>10}  ... 5 events elided ..."]

    def test_no_elision_at_or_under_limit(self):
        entries = [(float(i), "c", f"event-{i}") for i in range(5)]
        assert "elided" not in render_timeline(entries, limit=5)
        assert "elided" not in render_timeline(entries)
        assert len(render_timeline(entries, limit=5).splitlines()) == 5

    def test_render_plain(self):
        platform, _kernel = make_platform()
        platform.tracer.emit("api", "component-ready", job="j")
        text = render_timeline(job_timeline(platform, "j"))
        assert "component-ready" in text
        assert "0.00s" in text
