"""Unit tests for naming layout, learner helpers, and helper parsing."""

import pytest

from repro.core import layout
from repro.core.helpers import _exit_code, _learner_report
from repro.core.learner import (
    read_learner_status,
    workload_config_for,
    write_learner_status,
)
from repro.core.manifest import TrainingManifest
from repro.nfs import SharedFilesystem


def sample_manifest(**overrides):
    base = {
        "name": "n", "framework": "horovod", "model": "vgg16",
        "learners": 2, "gpus_per_learner": 2, "gpu_type": "p100-pcie",
        "target_steps": 10, "dataset_size_mb": 10,
        "data": {"bucket": "b", "credentials": {"k": "v"}},
        "results": {"bucket": "r", "credentials": {"k": "v"}},
    }
    base.update(overrides)
    return TrainingManifest.from_dict(base)


class TestLayout:
    def test_resource_names_embed_job_id(self):
        assert layout.guardian_job_name("job-1") == "guardian-job-1"
        assert layout.learner_set_name("job-1") == "job-1-learner"
        assert layout.learner_pod_name("job-1", 3) == "job-1-learner-3"
        assert layout.helper_deployment_name("job-1") == "job-1-helper"
        assert layout.pvc_name("job-1") == "job-1-vol"

    def test_etcd_keys_are_prefix_consistent(self):
        job = "job-9"
        assert layout.learner_status_key(job, 0).startswith(
            layout.learner_status_prefix(job))
        assert layout.learner_status_prefix(job).startswith(layout.job_prefix(job))
        assert layout.halt_key(job).startswith(layout.job_prefix(job))
        assert layout.guardian_attempt_key(job).startswith(
            layout.guardian_prefix(job))
        assert layout.guardian_deployed_key(job, "pvc").startswith(
            layout.guardian_deployed_prefix(job))
        assert layout.guardian_complete_key(job).startswith(
            layout.guardian_prefix(job))
        # deploy-complete must NOT be inside deployed/ (it is not a
        # rollback target).
        assert not layout.guardian_complete_key(job).startswith(
            layout.guardian_deployed_prefix(job))

    def test_nfs_paths_per_learner(self):
        assert layout.learner_status_file(2) == "/learners/learner-2/status"
        assert layout.learner_exit_file(0) == "/learners/learner-0/exit-code"
        assert layout.learner_log_file(1) == "/learners/learner-1/training.log"


class TestLearnerStatusFiles:
    def test_roundtrip(self):
        fs = SharedFilesystem()
        write_learner_status(fs, 0, "PROCESSING", 42, 10.5)
        status = read_learner_status(fs, 0)
        assert status == {"status": "PROCESSING", "step": 42, "time": 10.5}

    def test_missing_is_none(self):
        assert read_learner_status(SharedFilesystem(), 0) is None


class TestWorkloadConfigMapping:
    def test_maps_manifest_fields(self):
        config = workload_config_for(sample_manifest())
        assert config.model.name == "vgg16"
        assert config.framework.name == "horovod"
        assert config.gpu.name == "p100-pcie"
        assert config.gpus_per_learner == 2
        assert config.learners == 2
        assert config.intra_node is not None

    def test_single_gpu_has_no_intra_node(self):
        config = workload_config_for(sample_manifest(gpus_per_learner=1,
                                                     framework="tensorflow"))
        assert config.intra_node is None

    def test_batch_override(self):
        config = workload_config_for(sample_manifest(batch_per_gpu=16))
        assert config.batch == 16


class TestControllerParsing:
    def test_exit_code_parsing(self):
        fs = SharedFilesystem()
        assert _exit_code(fs, 0) is None
        fs.write_file(layout.learner_exit_file(0), "137\n")
        assert _exit_code(fs, 0) == 137
        fs.write_file(layout.learner_exit_file(0), "garbage")
        assert _exit_code(fs, 0) is None

    def test_report_prefers_exit_code(self):
        fs = SharedFilesystem()
        write_learner_status(fs, 0, "PROCESSING", 10, 1.0)
        fs.write_file(layout.learner_exit_file(0), "1")
        report = _learner_report(fs, 0, now=2.0)
        assert report["status"] == "FAILED"
        assert report["exit_code"] == 1
        assert report["step"] == 10

    def test_exit_code_mapping(self):
        fs = SharedFilesystem()
        for code, expected in ((0, "COMPLETED"), (143, "HALTED"), (7, "FAILED")):
            fs.write_file(layout.learner_exit_file(0), str(code))
            assert _learner_report(fs, 0, now=0.0)["status"] == expected

    def test_no_files_no_report(self):
        assert _learner_report(SharedFilesystem(), 0, now=0.0) is None

    def test_status_only_report(self):
        fs = SharedFilesystem()
        write_learner_status(fs, 1, "WAITING_DATA", 0, 3.0)
        report = _learner_report(fs, 1, now=5.0)
        assert report == {"status": "WAITING_DATA", "step": 0, "time": 5.0}
