"""Unit tests for manifest validation."""

import pytest

from repro.core import InvalidManifest, TrainingManifest


def valid_manifest(**overrides):
    base = {
        "name": "train-vgg",
        "framework": "tensorflow",
        "model": "vgg16",
        "learners": 2,
        "gpus_per_learner": 2,
        "gpu_type": "k80",
        "target_steps": 1000,
        "checkpoint_interval": 120.0,
        "dataset_size_mb": 500,
        "data": {"bucket": "in", "credentials": {"k": "v"}},
        "results": {"bucket": "out", "credentials": {"k": "v"}},
    }
    base.update(overrides)
    return base


class TestValidManifests:
    def test_roundtrip(self):
        manifest = TrainingManifest.from_dict(valid_manifest())
        again = TrainingManifest.from_dict(manifest.to_dict())
        assert again.to_dict() == manifest.to_dict()

    def test_defaults_applied(self):
        manifest = TrainingManifest.from_dict(valid_manifest())
        assert manifest.batch_per_gpu == 0
        assert manifest.learning_rate == 0.01

    def test_total_gpus(self):
        manifest = TrainingManifest.from_dict(valid_manifest())
        assert manifest.total_gpus == 4

    def test_framework_case_insensitive(self):
        manifest = TrainingManifest.from_dict(valid_manifest(framework="TensorFlow"))
        assert manifest.framework == "tensorflow"

    def test_extra_passthrough(self):
        manifest = TrainingManifest.from_dict(
            valid_manifest(extra={"fail_at_step": 10})
        )
        assert manifest.extra == {"fail_at_step": 10}


class TestInvalidManifests:
    @pytest.mark.parametrize("mutation,fragment", [
        ({"name": ""}, "name"),
        ({"framework": "keras9"}, "framework"),
        ({"model": "lenet-9000"}, "model"),
        ({"learners": 0}, "learners"),
        ({"learners": "two"}, "learners"),
        ({"gpus_per_learner": 0}, "gpus_per_learner"),
        ({"gpus_per_learner": 99}, "gpus_per_learner"),
        ({"gpu_type": "tpu"}, "gpu_type"),
        ({"target_steps": 0}, "target_steps"),
        ({"target_steps": None}, "target_steps"),
        ({"checkpoint_interval": -5}, "checkpoint_interval"),
        ({"batch_per_gpu": -1}, "batch_per_gpu"),
        ({"dataset_size_mb": 0}, "dataset_size_mb"),
        ({"data": {"bucket": "", "credentials": {"k": "v"}}}, "data.bucket"),
        ({"data": {"bucket": "b", "credentials": {}}}, "data.credentials"),
        ({"results": "nope"}, "results"),
    ])
    def test_each_field_validated(self, mutation, fragment):
        with pytest.raises(InvalidManifest) as excinfo:
            TrainingManifest.from_dict(valid_manifest(**mutation))
        assert any(fragment in problem for problem in excinfo.value.problems)

    def test_all_problems_reported_at_once(self):
        bad = valid_manifest(name="", model="nope", target_steps=0)
        with pytest.raises(InvalidManifest) as excinfo:
            TrainingManifest.from_dict(bad)
        assert len(excinfo.value.problems) == 3

    def test_non_dict_rejected(self):
        with pytest.raises(InvalidManifest):
            TrainingManifest.from_dict("not a manifest")

    def test_distributed_caffe_rejected(self):
        # Caffe 1.0 has no multi-node story; the manifest catches it.
        with pytest.raises(InvalidManifest) as excinfo:
            TrainingManifest.from_dict(valid_manifest(framework="caffe", learners=4))
        assert any("distributed" in p for p in excinfo.value.problems)

    def test_single_node_caffe_allowed(self):
        manifest = TrainingManifest.from_dict(
            valid_manifest(framework="caffe", learners=1)
        )
        assert manifest.framework == "caffe"


class TestGpuMemoryFit:
    def test_default_batches_fit_their_cards(self):
        # Every zoo default must be valid on both evaluation GPUs.
        for model in ("vgg16", "resnet50", "inceptionv3"):
            for gpu in ("k80", "p100-pcie"):
                framework = "caffe" if model == "vgg16" else "tensorflow"
                TrainingManifest.from_dict(valid_manifest(
                    model=model, framework=framework, learners=1,
                    gpus_per_learner=1, gpu_type=gpu,
                ))

    def test_oversized_batch_rejected(self):
        with pytest.raises(InvalidManifest) as excinfo:
            TrainingManifest.from_dict(valid_manifest(
                model="vgg16", batch_per_gpu=64, gpu_type="k80",
                learners=1, gpus_per_learner=1,
            ))
        assert any("needs" in p and "MB" in p for p in excinfo.value.problems)

    def test_bigger_card_accepts_bigger_batch(self):
        # VGG-16 batch 56: too big for a 12GB K80, fine on a 16GB P100.
        with pytest.raises(InvalidManifest):
            TrainingManifest.from_dict(valid_manifest(
                model="vgg16", batch_per_gpu=56, gpu_type="k80",
                framework="tensorflow", learners=1, gpus_per_learner=1,
            ))
        TrainingManifest.from_dict(valid_manifest(
            model="vgg16", batch_per_gpu=56, gpu_type="p100-pcie",
            framework="tensorflow", learners=1, gpus_per_learner=1,
        ))

    def test_memory_estimate_helpers(self):
        from repro.frameworks import K80
        from repro.frameworks.models import VGG16, fits_on_gpu, training_memory_mb

        required = training_memory_mb(VGG16, 32)
        assert 7000 < required < 10000  # ~1.7GB weights + 32x220MB
        assert fits_on_gpu(VGG16, 32, K80)
        assert not fits_on_gpu(VGG16, 64, K80)
