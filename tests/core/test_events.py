"""Unit tests for the platform event recorder (dedup, vocabulary)."""

import pytest

from repro.core.events import EventRecorder, PlatformEvent, REASONS
from repro.sim import Kernel, MetricsRegistry


@pytest.fixture
def kernel():
    return Kernel(seed=1)


@pytest.fixture
def recorder(kernel):
    return EventRecorder(kernel)


class TestEmit:
    def test_basic_emit(self, recorder):
        event = recorder.emit_event("Warning", "ComponentCrashed", "Pod",
                                    "dlaas-api-1", message="endpoint lost")
        assert event.count == 1
        assert event.key == ("Warning", "ComponentCrashed", "Pod", "dlaas-api-1")
        assert len(recorder) == 1

    def test_rejects_unknown_type(self, recorder):
        with pytest.raises(ValueError, match="Normal or Warning"):
            recorder.emit_event("Info", "ComponentCrashed", "Pod", "p")

    def test_rejects_unregistered_reason(self, recorder):
        with pytest.raises(ValueError, match="unregistered"):
            recorder.emit_event("Normal", "SomethingNovel", "Pod", "p")

    def test_rejects_freeform_reason(self, recorder):
        with pytest.raises(ValueError, match="CamelCase"):
            recorder.emit_event("Normal", "crashed: pod x", "Pod", "p")

    def test_register_reason_admits_custom(self, recorder):
        recorder.register_reason("MyCustomAlert")
        event = recorder.emit_event("Warning", "MyCustomAlert", "Component", "x")
        assert event.reason == "MyCustomAlert"

    def test_register_reason_rejects_invalid(self, recorder):
        with pytest.raises(ValueError):
            recorder.register_reason("not camel case")

    def test_builtin_vocabulary_is_camelcase(self):
        for reason in REASONS:
            assert reason[0].isupper() and " " not in reason, reason


class TestDedup:
    def test_repeat_bumps_count_not_length(self, kernel, recorder):
        first = recorder.emit_event("Warning", "ContainerRestarted", "Pod",
                                    "job-1-learner-0", message="exited 1")
        kernel.run(until=5.0)
        second = recorder.emit_event("Warning", "ContainerRestarted", "Pod",
                                     "job-1-learner-0", message="exited 1 again")
        assert second is first
        assert len(recorder) == 1
        assert first.count == 2
        assert first.first_time == 0.0
        assert first.last_time == 5.0
        assert first.message == "exited 1 again"

    def test_different_object_is_new_record(self, recorder):
        recorder.emit_event("Warning", "ContainerRestarted", "Pod", "a")
        recorder.emit_event("Warning", "ContainerRestarted", "Pod", "b")
        assert len(recorder) == 2

    def test_different_type_is_new_record(self, recorder):
        recorder.emit_event("Normal", "ComponentReady", "Pod", "a")
        recorder.emit_event("Warning", "ComponentCrashed", "Pod", "a")
        assert len(recorder) == 2


class TestQueries:
    def test_filters(self, recorder):
        recorder.emit_event("Normal", "Deployed", "Job", "job-1", job="job-1")
        recorder.emit_event("Warning", "LearnerFailed", "Pod",
                            "job-1-learner-0", job="job-1")
        recorder.emit_event("Normal", "Deployed", "Job", "job-2", job="job-2")
        assert len(recorder.events(job="job-1")) == 2
        assert len(recorder.warnings(job="job-1")) == 1
        assert recorder.events(reason="Deployed", job="job-2")[0].name == "job-2"
        assert recorder.get("Normal", "Deployed", "Job", "job-1") is not None

    def test_metrics_counter(self, kernel):
        registry = MetricsRegistry()
        recorder = EventRecorder(kernel, metrics=registry)
        recorder.emit_event("Warning", "NfsOutage", "NfsServer", "nfs")
        recorder.emit_event("Warning", "NfsOutage", "NfsServer", "nfs")
        counter = registry.counter("platform_events_total", ("type", "reason"))
        # Dedup folds the record but the counter sees every emission.
        assert counter.labels(type="Warning", reason="NfsOutage").value == 2


class TestDrainDirty:
    def test_drain_returns_touched_and_clears(self, recorder):
        recorder.emit_event("Normal", "Deployed", "Job", "job-1")
        recorder.emit_event("Warning", "LearnerFailed", "Pod", "p")
        first = recorder.drain_dirty()
        assert [e.reason for e in first] == ["Deployed", "LearnerFailed"]
        assert recorder.drain_dirty() == []
        # A dedup re-count marks the record dirty again.
        recorder.emit_event("Normal", "Deployed", "Job", "job-1")
        assert [e.reason for e in recorder.drain_dirty()] == ["Deployed"]

    def test_to_doc_roundtrip(self, recorder):
        event = recorder.emit_event("Warning", "JobFailed", "Job", "job-9",
                                    message="boom", job="job-9")
        doc = event.to_doc()
        assert doc["event_key"] == "Warning/JobFailed/Job/job-9"
        assert doc["count"] == 1 and doc["job"] == "job-9"
        assert isinstance(event, PlatformEvent)
