"""Admission control: rate metrics, quotas, and the fair queue.

Unit-level: drives an :class:`AdmissionController` directly on a live
platform (real kernel, mongo, metrics, events) so reservations, queue
waits, and pump grants run against the genuine machinery without going
through the RPC surface.
"""

import pytest

from repro import DlaasPlatform
from repro.core import PlatformConfig
from repro.core.api import ApiService
from repro.core.errors import QuotaExceeded, RateLimited
from repro.core.states import COMPLETED, QUEUED


def make_platform(**overrides):
    defaults = dict(gpu_nodes=1, gpus_per_node=2, management_nodes=1)
    defaults.update(overrides)
    platform = DlaasPlatform(seed=31, config=PlatformConfig(**defaults))
    platform.start()
    return platform


def make_controller(**overrides):
    platform = make_platform(**overrides)
    api = ApiService(platform, "api:unit-test")
    return platform, api.admission


def seed_active_jobs(platform, admission, tenant, count):
    def inserts():
        for i in range(count):
            yield from admission.mongo.insert_one("jobs", {
                "job_id": f"seed-{tenant}-{i:03d}",
                "tenant": tenant,
                "status": QUEUED,
            })
    platform.run_process(inserts(), limit=600)


class TestCallGate:
    def test_requests_counted_per_tenant_and_method(self):
        platform, admission = make_controller()
        admission.check_call("team-a", "submit")
        admission.check_call("team-a", "submit")
        admission.check_call("team-b", "status")
        counter = platform.metrics.get("api_requests_total")
        assert counter.labels(tenant="team-a", method="submit").value == 2
        assert counter.labels(tenant="team-b", method="status").value == 1

    def test_rate_rejection_instrumented(self):
        platform, admission = make_controller(api_rate_limit=1.0,
                                              api_rate_burst=2.0)
        admission.check_call("greedy", "list_jobs")
        admission.check_call("greedy", "list_jobs")
        with pytest.raises(RateLimited):
            admission.check_call("greedy", "list_jobs")
        rejected = platform.metrics.get("admission_rejected_total")
        assert rejected.labels(tenant="greedy", reason="rate").value == 1
        assert platform.events.events(reason="TenantThrottled")


class TestQuota:
    def test_disabled_quota_admits_without_yielding(self):
        _platform, admission = make_controller()  # tenant_quota_jobs=0
        gen = admission.admit_submission("team-a")
        with pytest.raises(StopIteration):
            next(gen)  # returns immediately: zero kernel events
        admission.settle("team-a")  # harmless no-op when nothing held

    def test_admit_reserves_and_settle_releases(self):
        platform, admission = make_controller(tenant_quota_jobs=2)

        def scenario():
            yield from admission.admit_submission("team-a")
        platform.run_process(scenario(), limit=600)
        assert admission._reserved["team-a"] == 1
        admission.settle("team-a")
        assert "team-a" not in admission._reserved

    def test_over_quota_rejected_without_queue(self):
        platform, admission = make_controller(tenant_quota_jobs=2)
        seed_active_jobs(platform, admission, "team-a", 2)

        def scenario():
            yield from admission.admit_submission("team-a")
        with pytest.raises(QuotaExceeded) as info:
            platform.run_process(scenario(), limit=600)
        assert info.value.reason == "quota"
        rejected = platform.metrics.get("admission_rejected_total")
        assert rejected.labels(tenant="team-a", reason="quota").value == 1

    def test_quota_counts_only_nonterminal_jobs(self):
        platform, admission = make_controller(tenant_quota_jobs=2)
        seed_active_jobs(platform, admission, "team-a", 1)

        def finish_and_admit():
            yield from admission.mongo.insert_one("jobs", {
                "job_id": "seed-done", "tenant": "team-a",
                "status": COMPLETED,
            })
            yield from admission.admit_submission("team-a")
            return True
        assert platform.run_process(finish_and_admit(), limit=600)

    def test_tenants_have_independent_quotas(self):
        platform, admission = make_controller(tenant_quota_jobs=1)
        seed_active_jobs(platform, admission, "team-a", 1)

        def scenario():
            yield from admission.admit_submission("team-b")
            return True
        assert platform.run_process(scenario(), limit=600)


class TestFairQueue:
    def test_queue_full_rejected(self):
        platform, admission = make_controller(tenant_quota_jobs=1,
                                              admission_queue_limit=1,
                                              admission_max_wait=2.0)
        seed_active_jobs(platform, admission, "team-a", 1)
        outcomes = []

        def submit():
            try:
                yield from admission.admit_submission("team-a")
                outcomes.append("admitted")
            except QuotaExceeded as exc:
                outcomes.append(exc.reason)

        def scenario():
            platform.kernel.spawn(submit())
            yield platform.kernel.sleep(0.01)  # first waiter is parked now
            yield from admission.admit_submission("team-a")

        with pytest.raises(QuotaExceeded) as info:
            platform.run_process(scenario(), limit=600)
        assert info.value.reason == "queue_full"

        def drain():  # advance past the parked waiter's timeout
            yield platform.kernel.sleep(3.0)
        platform.run_process(drain(), limit=600)
        assert outcomes == ["queue_timeout"]

    def test_queue_timeout_when_no_capacity_frees(self):
        platform, admission = make_controller(tenant_quota_jobs=1,
                                              admission_queue_limit=4,
                                              admission_max_wait=1.5)
        seed_active_jobs(platform, admission, "team-a", 1)
        start = platform.kernel.now

        def scenario():
            yield from admission.admit_submission("team-a")
        with pytest.raises(QuotaExceeded) as info:
            platform.run_process(scenario(), limit=600)
        assert info.value.reason == "queue_timeout"
        assert platform.kernel.now - start >= 1.5
        assert admission.queue_depth("team-a") == 0

    def test_waiter_granted_when_capacity_frees(self):
        platform, admission = make_controller(tenant_quota_jobs=1,
                                              admission_queue_limit=4,
                                              admission_max_wait=3.0)
        seed_active_jobs(platform, admission, "team-a", 1)

        def release_soon():
            yield platform.kernel.sleep(0.5)
            yield from admission.mongo.update_one(
                "jobs", {"job_id": "seed-team-a-000"},
                {"$set": {"status": COMPLETED}})

        def scenario():
            start = platform.kernel.now
            platform.kernel.spawn(release_soon())
            yield from admission.admit_submission("team-a")
            return platform.kernel.now - start

        waited = platform.run_process(scenario(), limit=600)
        assert 0.5 <= waited < 3.0
        assert admission._reserved["team-a"] == 1  # grant carried the slot
        assert admission.queue_depth("team-a") == 0
        depth = platform.metrics.get("admission_queue_depth")
        assert depth.labels(tenant="team-a").value == 0

    def test_grants_respect_weights_under_contention(self):
        # Two tenants, one shared pump: the heavy tenant (weight 3)
        # should drain roughly three waiters for each of the light
        # tenant's when both have capacity free at the same instant.
        platform, admission = make_controller(
            tenant_quota_jobs=4,
            admission_queue_limit=8,
            admission_max_wait=3.0,
            tenant_weights={"heavy": 3.0, "light": 1.0})
        seed_active_jobs(platform, admission, "heavy", 4)
        seed_active_jobs(platform, admission, "light", 4)
        order = []

        def submit(tenant, i):
            try:
                yield from admission.admit_submission(tenant)
                order.append((platform.kernel.now, tenant, i))
            except QuotaExceeded:
                pass

        def release_all():
            yield platform.kernel.sleep(0.3)
            yield from admission.mongo.update_one(
                "jobs", {"tenant": "heavy"}, {"$set": {"status": COMPLETED}})
            yield from admission.mongo.update_one(
                "jobs", {"tenant": "light"}, {"$set": {"status": COMPLETED}})

        def scenario():
            for i in range(3):
                platform.kernel.spawn(submit("heavy", i))
                platform.kernel.spawn(submit("light", i))
            platform.kernel.spawn(release_all())
            yield platform.kernel.sleep(5.0)

        platform.run_process(scenario(), limit=600)
        # One slot freed per tenant: exactly one waiter each admitted.
        admitted = {tenant for _t, tenant, _i in order}
        assert admitted == {"heavy", "light"}

    def test_pump_exits_when_queues_drain(self):
        platform, admission = make_controller(tenant_quota_jobs=1,
                                              admission_queue_limit=2,
                                              admission_max_wait=0.5)
        seed_active_jobs(platform, admission, "team-a", 1)

        def scenario():
            try:
                yield from admission.admit_submission("team-a")
            except QuotaExceeded:
                pass
            yield platform.kernel.sleep(2.0)
        platform.run_process(scenario(), limit=600)
        assert admission._pump is None
