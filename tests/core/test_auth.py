"""Unit tests for authentication, rate limiting and metering."""

import pytest

from repro.core import AuthError, RateLimited, RateLimiter, TokenRegistry
from repro.sim import Kernel


class TestTokenRegistry:
    def test_create_and_authenticate(self):
        registry = TokenRegistry()
        token = registry.create_tenant("team-a")
        assert registry.authenticate(token) == "team-a"

    def test_same_tenant_same_token(self):
        registry = TokenRegistry()
        assert registry.create_tenant("t") == registry.create_tenant("t")

    def test_distinct_tenants_distinct_tokens(self):
        registry = TokenRegistry()
        assert registry.create_tenant("a") != registry.create_tenant("b")

    def test_invalid_token_rejected(self):
        registry = TokenRegistry()
        with pytest.raises(AuthError):
            registry.authenticate("forged-token")

    def test_revoked_token_rejected(self):
        registry = TokenRegistry()
        token = registry.create_tenant("t")
        registry.revoke("t")
        with pytest.raises(AuthError):
            registry.authenticate(token)


class TestRateLimiter:
    def test_burst_allowed(self):
        kernel = Kernel()
        limiter = RateLimiter(kernel, rate=10.0, burst=5.0)
        for _ in range(5):
            limiter.check("t")
        with pytest.raises(RateLimited):
            limiter.check("t")

    def test_refill_over_time(self):
        kernel = Kernel()
        limiter = RateLimiter(kernel, rate=10.0, burst=5.0)
        for _ in range(5):
            limiter.check("t")
        kernel.run(until=1.0)  # 10 tokens refill, capped at burst
        for _ in range(5):
            limiter.check("t")

    def test_tenants_independent(self):
        kernel = Kernel()
        limiter = RateLimiter(kernel, rate=10.0, burst=1.0)
        limiter.check("a")
        limiter.check("b")  # b has its own bucket
        with pytest.raises(RateLimited):
            limiter.check("a")

    def test_invalid_parameters(self):
        kernel = Kernel()
        with pytest.raises(ValueError):
            RateLimiter(kernel, rate=0)
        with pytest.raises(ValueError):
            RateLimiter(kernel, rate=1, burst=0)
