"""Unit tests for the job lifecycle state machine."""

import pytest

from repro.core import (
    COMPLETED,
    DEPLOYING,
    DOWNLOADING,
    FAILED,
    HALTED,
    PROCESSING,
    QUEUED,
    STORING,
    IllegalTransition,
    StatusHistory,
    aggregate_learner_statuses,
    is_terminal,
    validate_transition,
)


class TestTransitions:
    def test_happy_path(self):
        path = [QUEUED, DEPLOYING, DOWNLOADING, PROCESSING, STORING, COMPLETED]
        for current, nxt in zip(path, path[1:]):
            validate_transition(current, nxt)

    def test_failure_from_anywhere_nonterminal(self):
        for status in (QUEUED, DEPLOYING, DOWNLOADING, PROCESSING, STORING):
            validate_transition(status, FAILED)
            validate_transition(status, HALTED)

    def test_no_exit_from_terminal(self):
        for terminal in (COMPLETED, FAILED, HALTED):
            for target in (QUEUED, PROCESSING, FAILED, COMPLETED):
                if target == terminal:
                    continue
                with pytest.raises(IllegalTransition):
                    validate_transition(terminal, target)

    def test_same_status_is_noop(self):
        validate_transition(PROCESSING, PROCESSING)

    def test_redeploy_rollback_allowed(self):
        # Guardian crash mid-run: rollback takes the job back to DEPLOYING.
        validate_transition(DOWNLOADING, DEPLOYING)
        validate_transition(PROCESSING, DEPLOYING)

    def test_skipping_forward_illegally_rejected(self):
        with pytest.raises(IllegalTransition):
            validate_transition(QUEUED, PROCESSING)
        with pytest.raises(IllegalTransition):
            validate_transition(DEPLOYING, COMPLETED)

    def test_is_terminal(self):
        assert is_terminal(COMPLETED) and is_terminal(FAILED) and is_terminal(HALTED)
        assert not is_terminal(PROCESSING)


class TestAggregation:
    def test_empty_is_deploying(self):
        assert aggregate_learner_statuses([]) == DEPLOYING

    def test_any_failed_fails_job(self):
        assert aggregate_learner_statuses([PROCESSING, FAILED, COMPLETED]) == FAILED

    def test_slowest_learner_wins(self):
        assert aggregate_learner_statuses([PROCESSING, DOWNLOADING]) == DOWNLOADING
        assert aggregate_learner_statuses([COMPLETED, PROCESSING]) == PROCESSING

    def test_all_completed(self):
        assert aggregate_learner_statuses([COMPLETED, COMPLETED]) == COMPLETED

    def test_halt_propagates(self):
        assert aggregate_learner_statuses([PROCESSING, HALTED]) == HALTED


class TestStatusHistory:
    def test_initial_entry(self):
        history = StatusHistory(time=1.0)
        assert history.current == QUEUED
        assert history.entries == [(QUEUED, 1.0)]

    def test_advance_records_timestamps(self):
        history = StatusHistory(time=0.0)
        assert history.advance(DEPLOYING, 2.0)
        assert history.advance(DOWNLOADING, 5.0)
        assert history.current == DOWNLOADING

    def test_advance_same_status_is_noop(self):
        history = StatusHistory(time=0.0)
        history.advance(DEPLOYING, 1.0)
        assert not history.advance(DEPLOYING, 2.0)
        assert len(history.entries) == 2

    def test_illegal_advance_raises(self):
        history = StatusHistory(time=0.0)
        with pytest.raises(IllegalTransition):
            history.advance(COMPLETED, 1.0)

    def test_time_in_status(self):
        history = StatusHistory(time=0.0)
        history.advance(DEPLOYING, 10.0)
        history.advance(DOWNLOADING, 16.0)
        assert history.time_in(QUEUED) == 10.0
        assert history.time_in(DEPLOYING) == 6.0
        assert history.time_in(DOWNLOADING) == 0.0  # still open

    def test_as_documents(self):
        history = StatusHistory(time=0.0)
        history.advance(DEPLOYING, 3.0)
        docs = history.as_documents()
        assert docs == [
            {"status": QUEUED, "time": 0.0},
            {"status": DEPLOYING, "time": 3.0},
        ]
