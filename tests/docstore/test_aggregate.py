"""Tests for the aggregation pipeline."""

import pytest

from repro.docstore import Collection, InvalidQuery, aggregate

JOBS = [
    {"tenant": "a", "status": "COMPLETED", "gpus": 1, "seconds": 100},
    {"tenant": "a", "status": "COMPLETED", "gpus": 4, "seconds": 400},
    {"tenant": "a", "status": "FAILED", "gpus": 2, "seconds": 50},
    {"tenant": "b", "status": "COMPLETED", "gpus": 2, "seconds": 200},
    {"tenant": "b", "status": "PROCESSING", "gpus": 1, "seconds": 0},
]


class TestStages:
    def test_match(self):
        out = aggregate(JOBS, [{"$match": {"status": "COMPLETED"}}])
        assert len(out) == 3

    def test_group_sum_and_count(self):
        out = aggregate(JOBS, [
            {"$group": {"_id": "$tenant",
                        "total_seconds": {"$sum": "$seconds"},
                        "jobs": {"$count": 1}}},
            {"$sort": {"_id": 1}},
        ])
        assert out == [
            {"_id": "a", "total_seconds": 550, "jobs": 3},
            {"_id": "b", "total_seconds": 200, "jobs": 2},
        ]

    def test_group_avg_min_max(self):
        out = aggregate(JOBS, [
            {"$group": {"_id": None,
                        "avg": {"$avg": "$gpus"},
                        "min": {"$min": "$gpus"},
                        "max": {"$max": "$gpus"}}},
        ])
        assert out[0]["avg"] == pytest.approx(2.0)
        assert out[0]["min"] == 1 and out[0]["max"] == 4

    def test_group_push(self):
        out = aggregate(JOBS, [
            {"$match": {"tenant": "b"}},
            {"$group": {"_id": "$tenant", "statuses": {"$push": "$status"}}},
        ])
        assert out[0]["statuses"] == ["COMPLETED", "PROCESSING"]

    def test_sort_limit_skip(self):
        out = aggregate(JOBS, [
            {"$sort": {"seconds": -1}},
            {"$skip": 1},
            {"$limit": 2},
        ])
        assert [d["seconds"] for d in out] == [200, 100]

    def test_project_rename_and_keep(self):
        out = aggregate(JOBS[:1], [
            {"$project": {"tenant": 1, "usage": "$seconds"}},
        ])
        assert out == [{"tenant": "a", "usage": 100}]

    def test_pipeline_composes(self):
        # The admin rollup: completed GPU-seconds by tenant, busiest first.
        out = aggregate(JOBS, [
            {"$match": {"status": "COMPLETED"}},
            {"$group": {"_id": "$tenant", "gpu_seconds": {"$sum": "$seconds"}}},
            {"$sort": {"gpu_seconds": -1}},
        ])
        assert [d["_id"] for d in out] == ["a", "b"]

    def test_does_not_mutate_source(self):
        snapshot = [dict(doc) for doc in JOBS]
        aggregate(JOBS, [{"$project": {"tenant": 1}}])
        assert JOBS == snapshot


class TestValidation:
    def test_unknown_stage(self):
        with pytest.raises(InvalidQuery):
            aggregate(JOBS, [{"$frobnicate": {}}])

    def test_group_requires_id(self):
        with pytest.raises(InvalidQuery):
            aggregate(JOBS, [{"$group": {"n": {"$count": 1}}}])

    def test_bad_accumulator(self):
        with pytest.raises(InvalidQuery):
            aggregate(JOBS, [{"$group": {"_id": None, "x": {"$median": "$gpus"}}}])

    def test_multi_key_stage_rejected(self):
        with pytest.raises(InvalidQuery):
            aggregate(JOBS, [{"$match": {}, "$limit": 2}])


class TestCollectionIntegration:
    def test_collection_aggregate(self):
        coll = Collection("jobs")
        for doc in JOBS:
            coll.insert_one(doc)
        out = coll.aggregate([
            {"$group": {"_id": "$status", "n": {"$count": 1}}},
            {"$sort": {"n": -1}},
        ])
        assert out[0]["_id"] == "COMPLETED" and out[0]["n"] == 3
