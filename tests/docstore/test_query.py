"""Unit tests for query matching."""

import pytest

from repro.docstore import InvalidQuery, matches

DOC = {
    "name": "job-1",
    "status": "PROCESSING",
    "learners": 4,
    "framework": {"name": "tensorflow", "version": "1.5"},
    "tags": ["gpu", "vision"],
    "progress": 0.42,
}


class TestImplicitEquality:
    def test_equal(self):
        assert matches(DOC, {"name": "job-1"})

    def test_not_equal(self):
        assert not matches(DOC, {"name": "job-2"})

    def test_dotted_path(self):
        assert matches(DOC, {"framework.name": "tensorflow"})
        assert not matches(DOC, {"framework.name": "caffe"})

    def test_missing_field_matches_none(self):
        assert matches(DOC, {"missing": None})
        assert not matches(DOC, {"missing": "x"})

    def test_array_contains(self):
        assert matches(DOC, {"tags": "gpu"})
        assert not matches(DOC, {"tags": "audio"})

    def test_multiple_fields_are_anded(self):
        assert matches(DOC, {"name": "job-1", "learners": 4})
        assert not matches(DOC, {"name": "job-1", "learners": 5})

    def test_empty_query_matches_all(self):
        assert matches(DOC, {})


class TestComparisons:
    def test_gt_lt(self):
        assert matches(DOC, {"learners": {"$gt": 3}})
        assert not matches(DOC, {"learners": {"$gt": 4}})
        assert matches(DOC, {"learners": {"$gte": 4}})
        assert matches(DOC, {"learners": {"$lt": 5}})
        assert matches(DOC, {"learners": {"$lte": 4}})

    def test_comparison_on_missing_field(self):
        assert not matches(DOC, {"missing": {"$gt": 0}})

    def test_comparison_type_mismatch_is_false(self):
        assert not matches(DOC, {"name": {"$gt": 3}})

    def test_ne(self):
        assert matches(DOC, {"status": {"$ne": "FAILED"}})
        assert not matches(DOC, {"status": {"$ne": "PROCESSING"}})

    def test_in_nin(self):
        assert matches(DOC, {"status": {"$in": ["QUEUED", "PROCESSING"]}})
        assert not matches(DOC, {"status": {"$nin": ["QUEUED", "PROCESSING"]}})
        assert matches(DOC, {"status": {"$nin": ["FAILED"]}})

    def test_in_requires_list(self):
        with pytest.raises(InvalidQuery):
            matches(DOC, {"status": {"$in": "PROCESSING"}})

    def test_exists(self):
        assert matches(DOC, {"progress": {"$exists": True}})
        assert matches(DOC, {"missing": {"$exists": False}})
        assert not matches(DOC, {"missing": {"$exists": True}})

    def test_regex(self):
        assert matches(DOC, {"name": {"$regex": r"^job-\d+$"}})
        assert not matches(DOC, {"name": {"$regex": r"^task-"}})

    def test_not(self):
        assert matches(DOC, {"learners": {"$not": {"$gt": 10}}})
        assert not matches(DOC, {"learners": {"$not": {"$gt": 1}}})


class TestLogical:
    def test_and(self):
        assert matches(DOC, {"$and": [{"name": "job-1"}, {"learners": {"$gte": 4}}]})
        assert not matches(DOC, {"$and": [{"name": "job-1"}, {"learners": 99}]})

    def test_or(self):
        assert matches(DOC, {"$or": [{"name": "nope"}, {"status": "PROCESSING"}]})
        assert not matches(DOC, {"$or": [{"name": "nope"}, {"status": "FAILED"}]})

    def test_nor(self):
        assert matches(DOC, {"$nor": [{"name": "nope"}, {"status": "FAILED"}]})
        assert not matches(DOC, {"$nor": [{"status": "PROCESSING"}]})

    def test_unknown_operator_raises(self):
        with pytest.raises(InvalidQuery):
            matches(DOC, {"$xor": []})
        with pytest.raises(InvalidQuery):
            matches(DOC, {"learners": {"$almost": 4}})
