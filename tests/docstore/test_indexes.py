"""Secondary indexes and the point-lookup planner.

The planner must be invisible: for every query shape, an indexed
collection returns exactly what the full scan returns — same documents,
same order. These tests drive both code paths over the Mongo quirks the
planner has to honor (None matches missing fields, scalars match inside
arrays, unhashable values fall to the overflow set).
"""

import pytest

from repro.docstore.collection import Collection
from repro.docstore.errors import DuplicateKeyError


def strip(docs):
    """Drop the auto-assigned _id (a global sequence, so the two
    collections' ids differ) before comparing result sets."""
    if isinstance(docs, dict):
        return {k: v for k, v in docs.items() if k != "_id"}
    return [{k: v for k, v in d.items() if k != "_id"} for d in docs]

DOCS = [
    {"job_id": "j-1", "status": "QUEUED", "tenant": "acme", "gpus": 2},
    {"job_id": "j-2", "status": "RUNNING", "tenant": "acme", "gpus": 4},
    {"job_id": "j-3", "status": "RUNNING", "tenant": "zeta"},  # no gpus
    {"job_id": "j-4", "status": None, "tenant": "zeta", "gpus": [1, 2]},
    {"job_id": "j-5", "status": ["RUNNING", "old"], "tenant": "acme",
     "gpus": {"a": 1}},  # list status, unhashable gpus
]


def make_pair():
    """The same data in an indexed and an unindexed collection."""
    indexed = Collection("jobs", use_planner=True)
    indexed.create_index("job_id", unique=True)
    indexed.create_index("status")
    indexed.create_index("tenant")
    indexed.create_index("gpus")
    scan = Collection("jobs", use_planner=False)
    for doc in DOCS:
        indexed.insert_one(dict(doc))
        scan.insert_one(dict(doc))
    return indexed, scan


QUERIES = [
    {},
    {"job_id": "j-2"},
    {"job_id": "missing"},
    {"status": "RUNNING"},           # must include the list-status doc
    {"status": None},                # must match missing AND explicit None
    {"tenant": "acme", "status": "RUNNING"},
    {"gpus": 2},                     # scalar matching inside the array doc
    {"gpus": {"$gte": 2}},           # operator query: planner falls back
    {"status": {"$eq": "QUEUED"}},   # $eq is plannable
    {"tenant": "zeta"},
]


@pytest.mark.parametrize("query", QUERIES, ids=[str(q) for q in QUERIES])
def test_planner_matches_full_scan(query):
    indexed, scan = make_pair()
    assert strip(indexed.find(query)) == strip(scan.find(query))


def test_planner_after_update_and_delete():
    indexed, scan = make_pair()
    for coll in (indexed, scan):
        coll.update_one({"job_id": "j-1"}, {"$set": {"status": "RUNNING"}})
        coll.update_one({"job_id": "j-2"}, {"$set": {"tenant": "zeta"}})
        coll.delete_one({"job_id": "j-3"})
    for query in ({"status": "RUNNING"}, {"tenant": "zeta"},
                  {"status": "RUNNING", "tenant": "acme"}):
        assert strip(indexed.find(query)) == strip(scan.find(query))
    # The old index entries must be gone.
    assert indexed.find({"tenant": "acme", "job_id": "j-2"}) == []


def test_unique_index_still_enforced():
    indexed, _scan = make_pair()
    with pytest.raises(DuplicateKeyError):
        indexed.insert_one({"job_id": "j-1"})


def test_find_sort_limit_skip_equivalence():
    indexed, scan = make_pair()
    kwargs = dict(sort=[("job_id", -1)], limit=2, skip=1)
    assert (strip(indexed.find({"tenant": "acme"}, **kwargs))
            == strip(scan.find({"tenant": "acme"}, **kwargs)))


class TestProjectionAndCopy:
    def test_projection_returns_only_selected_fields(self):
        indexed, _ = make_pair()
        doc = indexed.find_one({"job_id": "j-2"},
                               projection=["job_id", "status"])
        assert strip(doc) == {"job_id": "j-2", "status": "RUNNING"}

    def test_projection_copies_are_independent(self):
        indexed, _ = make_pair()
        doc = indexed.find_one({"job_id": "j-4"}, projection=["gpus"])
        doc["gpus"].append(99)
        assert indexed.find_one({"job_id": "j-4"})["gpus"] == [1, 2]

    def test_copy_false_returns_live_reference(self):
        indexed, _ = make_pair()
        raw = indexed.find_one({"job_id": "j-1"}, copy=False)
        stored = indexed.find({"job_id": "j-1"}, copy=False)[0]
        assert raw is stored

    def test_default_copy_protects_store(self):
        indexed, _ = make_pair()
        doc = indexed.find_one({"job_id": "j-1"})
        doc["status"] = "MUTATED"
        assert indexed.find_one({"job_id": "j-1"})["status"] == "QUEUED"
