"""Docstore sharding: placement, routed point ops, scatter-gather."""

import pytest

from repro.docstore import MongoShardSet, ShardedMongoClient, shard_index
from repro.grpcnet import LatencyModel, Network
from repro.sim import Kernel


@pytest.fixture
def kernel():
    return Kernel(seed=11)


@pytest.fixture
def network(kernel):
    return Network(kernel, latency=LatencyModel(base=0.001, jitter=0.0))


@pytest.fixture
def shard_set(kernel, network):
    return MongoShardSet(kernel, network, shards=3, size=1).start()


@pytest.fixture
def client(kernel, network, shard_set):
    return ShardedMongoClient(kernel, network, shard_set, caller="test")


def run(kernel, generator):
    return kernel.run_until_complete(kernel.spawn(generator))


JOB_IDS = [f"job-{i:05d}" for i in range(30)]


def seed_jobs(kernel, client):
    def inserts():
        for i, job_id in enumerate(JOB_IDS):
            yield from client.insert_one("jobs", {
                "job_id": job_id,
                "tenant": f"tenant-{i % 3}",
                "status": "QUEUED" if i % 2 else "COMPLETED",
                "created_at": float(i),
            })
    run(kernel, inserts())


class TestPlacement:
    def test_jobs_spread_across_shards(self, kernel, client, shard_set):
        seed_jobs(kernel, client)
        counts = [
            shard.primary().database.collection("jobs").count_documents({})
            for shard in shard_set.shards
        ]
        assert sum(counts) == len(JOB_IDS)
        assert all(count > 0 for count in counts), counts

    def test_placement_matches_shard_index(self, kernel, client, shard_set):
        seed_jobs(kernel, client)
        for job_id in JOB_IDS:
            owner = shard_set.shards[shard_index(job_id, 3)]
            stored = owner.primary().database.collection("jobs").find_one(
                {"job_id": job_id})
            assert stored is not None, job_id

    def test_unsharded_collection_pinned_to_shard_zero(self, kernel, client,
                                                       shard_set):
        def work():
            yield from client.insert_one("counters",
                                         {"_id_name": "job-seq", "seq": 0})
        run(kernel, work())
        assert shard_set.shards[0].primary().database.collection(
            "counters").count_documents({}) == 1
        for shard in shard_set.shards[1:]:
            assert shard.primary().database.collection(
                "counters").count_documents({}) == 0


class TestRoutedPointOps:
    def test_find_one_by_job_id(self, kernel, client):
        seed_jobs(kernel, client)

        def work():
            doc = yield from client.find_one("jobs", {"job_id": "job-00007"})
            return doc
        doc = run(kernel, work())
        assert doc["tenant"] == "tenant-1"

    def test_claim_is_routed_and_exactly_once(self, kernel, client):
        seed_jobs(kernel, client)

        def claim():
            first = yield from client.find_one_and_update(
                "jobs", {"job_id": "job-00001", "status": "QUEUED"},
                {"$set": {"status": "DEPLOYING"}})
            second = yield from client.find_one_and_update(
                "jobs", {"job_id": "job-00001", "status": "QUEUED"},
                {"$set": {"status": "DEPLOYING"}})
            return first, second
        first, second = run(kernel, claim())
        assert first is not None and first["status"] == "DEPLOYING"
        assert second is None

    def test_update_one_without_key_scatters(self, kernel, client):
        seed_jobs(kernel, client)

        def work():
            matched, modified = yield from client.update_one(
                "jobs", {"tenant": "tenant-2", "job_id": "job-00002"},
                {"$set": {"note": "x"}})
            return matched, modified
        matched, modified = run(kernel, work())
        assert (matched, modified) == (1, 1)


class TestScatterGather:
    def test_tenant_listing_spans_shards(self, kernel, client):
        seed_jobs(kernel, client)

        def work():
            docs = yield from client.find("jobs", {"tenant": "tenant-0"},
                                          sort=[("created_at", 1)])
            return docs
        docs = run(kernel, work())
        assert [d["job_id"] for d in docs] == JOB_IDS[::3]

    def test_global_sort_skip_limit(self, kernel, client):
        seed_jobs(kernel, client)

        def work():
            docs = yield from client.find("jobs", {},
                                          sort=[("created_at", -1)],
                                          skip=2, limit=3)
            return docs
        docs = run(kernel, work())
        assert [d["job_id"] for d in docs] == ["job-00027", "job-00026",
                                               "job-00025"]

    def test_count_sums_shards(self, kernel, client):
        seed_jobs(kernel, client)

        def work():
            total = yield from client.count("jobs", {"status": "QUEUED"})
            return total
        assert run(kernel, work()) == 15

    def test_delete_many_sums_shards(self, kernel, client):
        seed_jobs(kernel, client)

        def work():
            deleted = yield from client.delete_many("jobs",
                                                    {"status": "COMPLETED"})
            remaining = yield from client.count("jobs", {})
            return deleted, remaining
        assert run(kernel, work()) == (15, 15)

    def test_group_aggregate_merges_partials(self, kernel, client):
        seed_jobs(kernel, client)

        def work():
            rollup = yield from client.aggregate("jobs", [
                {"$group": {"_id": "$tenant",
                            "jobs": {"$count": 1},
                            "ids": {"$push": "$job_id"}}},
                {"$sort": {"_id": 1}},
            ])
            return rollup
        rollup = run(kernel, work())
        assert [g["_id"] for g in rollup] == ["tenant-0", "tenant-1",
                                              "tenant-2"]
        assert all(g["jobs"] == 10 for g in rollup)
        assert sorted(rollup[0]["ids"]) == JOB_IDS[::3]

    def test_create_index_reaches_every_shard(self, kernel, client,
                                              shard_set):
        def work():
            yield from client.create_index("jobs", "job_id", unique=True)
        run(kernel, work())
        for shard in shard_set.shards:
            coll = shard.primary().database.collection("jobs")
            assert "job_id" in coll._unique_indexes
