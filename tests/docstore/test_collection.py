"""Unit tests for collections, updates and the replica set."""

import pytest

from repro.docstore import (
    Collection,
    DuplicateKeyError,
    InvalidUpdate,
    MongoClient,
    MongoReplicaSet,
    NoPrimary,
    ObjectId,
    apply_update,
)
from repro.grpcnet import LatencyModel, Network
from repro.sim import Kernel


@pytest.fixture
def coll():
    return Collection("test.jobs")


class TestInsertFind:
    def test_insert_assigns_id(self, coll):
        doc_id = coll.insert_one({"name": "a"})
        assert isinstance(doc_id, ObjectId)
        assert coll.find_one({"name": "a"})["_id"] == doc_id

    def test_insert_duplicate_id_rejected(self, coll):
        doc_id = coll.insert_one({"name": "a"})
        with pytest.raises(DuplicateKeyError):
            coll.insert_one({"_id": doc_id, "name": "b"})

    def test_returned_docs_are_copies(self, coll):
        coll.insert_one({"name": "a", "nested": {"x": 1}})
        doc = coll.find_one({})
        doc["nested"]["x"] = 999
        assert coll.find_one({})["nested"]["x"] == 1

    def test_stored_doc_insulated_from_caller_mutation(self, coll):
        source = {"name": "a", "list": [1]}
        coll.insert_one(source)
        source["list"].append(2)
        assert coll.find_one({})["list"] == [1]

    def test_find_sort_limit_skip(self, coll):
        for i in (3, 1, 2, 5, 4):
            coll.insert_one({"i": i})
        docs = coll.find({}, sort=[("i", 1)], skip=1, limit=2)
        assert [d["i"] for d in docs] == [2, 3]
        docs = coll.find({}, sort=[("i", -1)], limit=1)
        assert docs[0]["i"] == 5

    def test_multi_key_sort_stable(self, coll):
        coll.insert_one({"a": 1, "b": 2})
        coll.insert_one({"a": 1, "b": 1})
        coll.insert_one({"a": 0, "b": 9})
        docs = coll.find({}, sort=[("a", 1), ("b", 1)])
        assert [(d["a"], d["b"]) for d in docs] == [(0, 9), (1, 1), (1, 2)]

    def test_projection(self, coll):
        coll.insert_one({"a": 1, "b": 2, "c": 3})
        docs = coll.find({}, projection=["a"])
        assert set(docs[0]) == {"_id", "a"}

    def test_count_and_distinct(self, coll):
        for status in ("QUEUED", "PROCESSING", "PROCESSING"):
            coll.insert_one({"status": status})
        assert coll.count_documents({"status": "PROCESSING"}) == 2
        assert coll.distinct("status") == ["QUEUED", "PROCESSING"]


class TestUpdate:
    def test_set_and_inc(self, coll):
        coll.insert_one({"name": "a", "n": 1})
        matched, modified = coll.update_one({"name": "a"}, {"$set": {"x": 9}, "$inc": {"n": 2}})
        assert (matched, modified) == (1, 1)
        doc = coll.find_one({})
        assert doc["x"] == 9 and doc["n"] == 3

    def test_update_no_match(self, coll):
        assert coll.update_one({"name": "ghost"}, {"$set": {"x": 1}}) == (0, 0)

    def test_upsert_creates(self, coll):
        coll.update_one({"name": "new"}, {"$set": {"x": 1}}, upsert=True)
        doc = coll.find_one({"name": "new"})
        assert doc["x"] == 1

    def test_update_many(self, coll):
        for i in range(3):
            coll.insert_one({"kind": "k", "i": i})
        matched, modified = coll.update_many({"kind": "k"}, {"$set": {"done": True}})
        assert matched == 3 and modified == 3

    def test_noop_update_reports_unmodified(self, coll):
        coll.insert_one({"name": "a", "x": 1})
        matched, modified = coll.update_one({"name": "a"}, {"$set": {"x": 1}})
        assert (matched, modified) == (1, 0)

    def test_push_pull_addtoset(self, coll):
        coll.insert_one({"name": "a"})
        coll.update_one({"name": "a"}, {"$push": {"tags": "x"}})
        coll.update_one({"name": "a"}, {"$addToSet": {"tags": "x"}})
        coll.update_one({"name": "a"}, {"$push": {"tags": "y"}})
        assert coll.find_one({})["tags"] == ["x", "y"]
        coll.update_one({"name": "a"}, {"$pull": {"tags": "x"}})
        assert coll.find_one({})["tags"] == ["y"]

    def test_unset_and_rename(self, coll):
        coll.insert_one({"name": "a", "old": 1, "gone": 2})
        coll.update_one({}, {"$unset": {"gone": ""}, "$rename": {"old": "new"}})
        doc = coll.find_one({})
        assert "gone" not in doc and "old" not in doc and doc["new"] == 1

    def test_min_max(self, coll):
        coll.insert_one({"v": 5})
        coll.update_one({}, {"$min": {"v": 3}})
        assert coll.find_one({})["v"] == 3
        coll.update_one({}, {"$max": {"v": 10}})
        assert coll.find_one({})["v"] == 10

    def test_replacement_keeps_id(self, coll):
        doc_id = coll.insert_one({"name": "a", "x": 1})
        coll.replace_one({"name": "a"}, {"name": "b"})
        doc = coll.find_one({})
        assert doc["_id"] == doc_id and doc["name"] == "b" and "x" not in doc

    def test_cannot_update_id(self, coll):
        coll.insert_one({"name": "a"})
        with pytest.raises(InvalidUpdate):
            coll.update_one({}, {"$set": {"_id": ObjectId()}})

    def test_mixed_update_rejected(self):
        with pytest.raises(InvalidUpdate):
            apply_update({"a": 1}, {"$set": {"b": 2}, "c": 3})

    def test_find_one_and_update_atomic_claim(self, coll):
        # The pattern the LCM uses to claim work exactly once.
        coll.insert_one({"job": "j1", "claimed": False})
        first = coll.find_one_and_update({"job": "j1", "claimed": False},
                                         {"$set": {"claimed": True}})
        second = coll.find_one_and_update({"job": "j1", "claimed": False},
                                          {"$set": {"claimed": True}})
        assert first is not None and second is None

    def test_dotted_set_creates_intermediate(self, coll):
        coll.insert_one({"name": "a"})
        coll.update_one({}, {"$set": {"metrics.images_per_sec": 42.0}})
        assert coll.find_one({})["metrics"]["images_per_sec"] == 42.0


class TestUniqueIndex:
    def test_unique_index_blocks_duplicates(self, coll):
        coll.create_index("job_id", unique=True)
        coll.insert_one({"job_id": "j1"})
        with pytest.raises(DuplicateKeyError):
            coll.insert_one({"job_id": "j1"})

    def test_unique_index_on_existing_duplicates_fails(self, coll):
        coll.insert_one({"job_id": "j1"})
        coll.insert_one({"job_id": "j1"})
        with pytest.raises(DuplicateKeyError):
            coll.create_index("job_id", unique=True)

    def test_delete_frees_unique_slot(self, coll):
        coll.create_index("job_id", unique=True)
        coll.insert_one({"job_id": "j1"})
        coll.delete_one({"job_id": "j1"})
        coll.insert_one({"job_id": "j1"})  # no error

    def test_update_into_conflict_rejected(self, coll):
        coll.create_index("job_id", unique=True)
        coll.insert_one({"job_id": "j1"})
        coll.insert_one({"job_id": "j2"})
        with pytest.raises(DuplicateKeyError):
            coll.update_one({"job_id": "j2"}, {"$set": {"job_id": "j1"}})


class TestReplicaSet:
    def setup_method(self):
        self.kernel = Kernel(seed=3)
        self.network = Network(self.kernel, latency=LatencyModel(0.001, 0.0))
        self.rs = MongoReplicaSet(self.kernel, self.network, size=3).start()
        self.client = MongoClient(self.kernel, self.network, self.rs)

    def run(self, gen):
        return self.kernel.run_until_complete(self.kernel.spawn(gen))

    def test_write_visible_after_read(self):
        def scenario():
            yield from self.client.insert_one("jobs", {"name": "j1"})
            doc = yield from self.client.find_one("jobs", {"name": "j1"})
            return doc

        assert self.run(scenario())["name"] == "j1"

    def test_write_replicated_to_secondaries(self):
        def scenario():
            yield from self.client.insert_one("jobs", {"name": "j1"})

        self.run(scenario())
        for member in self.rs.members.values():
            assert member.database.collection("jobs").count_documents({}) == 1

    def test_failover_to_next_member(self):
        def scenario():
            yield from self.client.insert_one("jobs", {"name": "before"})
            self.rs.member("mongo-0").crash()
            yield from self.client.insert_one("jobs", {"name": "after"})
            doc = yield from self.client.find_one("jobs", {"name": "after"})
            return doc

        assert self.run(scenario())["name"] == "after"
        assert self.rs.primary_id() == "mongo-1"

    def test_majority_loss_blocks_writes(self):
        self.rs.member("mongo-1").crash()
        self.rs.member("mongo-2").crash()

        def scenario():
            yield from self.client.insert_one("jobs", {"name": "j"})

        client = MongoClient(self.kernel, self.network, self.rs, max_attempts=3,
                             retry_delay=0.01)

        def fast_scenario():
            yield from client.insert_one("jobs", {"name": "j"})

        with pytest.raises(NoPrimary):
            self.run(fast_scenario())

    def test_recovered_primary_resyncs_then_leads(self):
        def scenario():
            self.rs.member("mongo-0").crash()
            yield from self.client.insert_one("jobs", {"name": "during"})
            self.rs.member("mongo-0").restart()
            # Initial sync in progress: mongo-1 still leads.
            yield self.kernel.sleep(0.05)
            mid = self.rs.primary_id()
            yield self.kernel.sleep(2.0)
            return mid, self.rs.primary_id()

        mid, final = self.run(scenario())
        assert mid == "mongo-1"
        assert final == "mongo-0"
        # Crucially, the recovered leader has the write it missed.
        member = self.rs.member("mongo-0")
        assert member.database.collection("jobs").count_documents(
            {"name": "during"}) == 1

    def test_restart_without_primary_serves_own_data(self):
        def scenario():
            yield from self.client.insert_one("jobs", {"name": "kept"})
            for member_id in self.rs.member_ids:
                self.rs.member(member_id).crash()
            self.rs.member("mongo-2").restart()
            yield self.kernel.sleep(0.5)
            return self.rs.primary_id()

        assert self.run(scenario()) == "mongo-2"
        coll = self.rs.member("mongo-2").database.collection("jobs")
        assert coll.count_documents({"name": "kept"}) == 1
