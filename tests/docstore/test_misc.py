"""Edge-case tests: ObjectId, Database, find_one_and_update variants."""

import pytest

from repro.docstore import Collection, Database, ObjectId


class TestObjectId:
    def test_unique_and_ordered(self):
        first, second = ObjectId(), ObjectId()
        assert first != second
        assert first < second

    def test_hashable(self):
        oid = ObjectId()
        assert ObjectId(oid) == oid
        assert len({oid, ObjectId(oid)}) == 1

    def test_str_is_24_hex(self):
        text = str(ObjectId())
        assert len(text) == 24
        int(text, 16)

    def test_invalid_value_rejected(self):
        with pytest.raises(TypeError):
            ObjectId("not-an-int")
        with pytest.raises(TypeError):
            ObjectId(-1)

    def test_comparison_with_other_types(self):
        assert ObjectId() != "string"
        with pytest.raises(TypeError):
            ObjectId() < 5


class TestDatabase:
    def test_collections_created_on_access(self):
        db = Database("dlaas")
        coll = db.collection("jobs")
        assert coll is db["jobs"]
        assert db.collection_names() == ["jobs"]
        assert coll.name == "dlaas.jobs"

    def test_drop_collection(self):
        db = Database("dlaas")
        db["jobs"].insert_one({"a": 1})
        db.drop_collection("jobs")
        assert db.collection_names() == []
        assert db["jobs"].count_documents({}) == 0

    def test_drop_missing_is_noop(self):
        Database("d").drop_collection("ghost")


class TestFindOneAndUpdate:
    def test_return_old_document(self):
        coll = Collection("t")
        coll.insert_one({"k": "a", "n": 1})
        old = coll.find_one_and_update({"k": "a"}, {"$inc": {"n": 1}},
                                       return_new=False)
        assert old["n"] == 1
        assert coll.find_one({})["n"] == 2

    def test_missing_returns_none(self):
        coll = Collection("t")
        assert coll.find_one_and_update({"k": "ghost"}, {"$set": {"x": 1}}) is None

    def test_returned_documents_are_copies(self):
        coll = Collection("t")
        coll.insert_one({"k": "a", "nested": {"x": 1}})
        doc = coll.find_one_and_update({"k": "a"}, {"$set": {"y": 2}})
        doc["nested"]["x"] = 99
        assert coll.find_one({})["nested"]["x"] == 1
