"""Unit tests for the KV state machine."""

import pytest

from repro.raftkv import KvStateMachine, WatchHub
from repro.sim import Kernel


@pytest.fixture
def sm():
    return KvStateMachine()


class TestPutGetDelete:
    def test_put_and_get(self, sm):
        result = sm.apply({"op": "put", "key": "a", "value": 1})
        assert result["ok"]
        assert sm.get("a") == 1

    def test_revision_increments(self, sm):
        r1 = sm.apply({"op": "put", "key": "a", "value": 1})["revision"]
        r2 = sm.apply({"op": "put", "key": "a", "value": 2})["revision"]
        assert r2 == r1 + 1

    def test_delete(self, sm):
        sm.apply({"op": "put", "key": "a", "value": 1})
        result = sm.apply({"op": "delete", "key": "a"})
        assert result["deleted"] == 1
        assert sm.get("a") is None

    def test_delete_missing_is_ok(self, sm):
        result = sm.apply({"op": "delete", "key": "ghost"})
        assert result["ok"] and result["deleted"] == 0

    def test_delete_prefix(self, sm):
        for key in ("jobs/1/s0", "jobs/1/s1", "jobs/2/s0"):
            sm.apply({"op": "put", "key": key, "value": "x"})
        result = sm.apply({"op": "delete_prefix", "prefix": "jobs/1/"})
        assert result["deleted"] == 2
        assert sm.get("jobs/2/s0") == "x"

    def test_range_sorted(self, sm):
        sm.apply({"op": "put", "key": "b", "value": 2})
        sm.apply({"op": "put", "key": "a", "value": 1})
        assert sm.range("") == [("a", 1), ("b", 2)]

    def test_get_with_revision(self, sm):
        assert sm.get_with_revision("missing") == (None, 0)
        sm.apply({"op": "put", "key": "a", "value": 1})
        value, revision = sm.get_with_revision("a")
        assert value == 1 and revision == 1


class TestCas:
    def test_cas_success(self, sm):
        sm.apply({"op": "put", "key": "a", "value": 1})
        result = sm.apply({"op": "cas", "key": "a", "expected": 1, "value": 2})
        assert result["ok"]
        assert sm.get("a") == 2

    def test_cas_failure_keeps_value(self, sm):
        sm.apply({"op": "put", "key": "a", "value": 1})
        result = sm.apply({"op": "cas", "key": "a", "expected": 99, "value": 2})
        assert not result["ok"]
        assert result["actual"] == 1
        assert sm.get("a") == 1

    def test_cas_on_missing_key(self, sm):
        result = sm.apply({"op": "cas", "key": "a", "expected": None, "value": 1})
        assert result["ok"]
        assert sm.get("a") == 1


class TestSessions:
    def test_duplicate_seq_returns_cached_result(self, sm):
        cmd = {"op": "put", "key": "a", "value": 1, "client_id": "c", "seq": 1}
        r1 = sm.apply(cmd)
        r2 = sm.apply(cmd)  # retried duplicate
        assert r1 == r2
        assert sm.revision == 1  # applied exactly once

    def test_old_seq_does_not_reapply(self, sm):
        sm.apply({"op": "put", "key": "a", "value": 1, "client_id": "c", "seq": 1})
        sm.apply({"op": "put", "key": "a", "value": 2, "client_id": "c", "seq": 2})
        sm.apply({"op": "put", "key": "a", "value": 1, "client_id": "c", "seq": 1})
        assert sm.get("a") == 2

    def test_distinct_clients_independent(self, sm):
        sm.apply({"op": "put", "key": "a", "value": 1, "client_id": "c1", "seq": 1})
        sm.apply({"op": "put", "key": "a", "value": 2, "client_id": "c2", "seq": 1})
        assert sm.get("a") == 2


class TestLeases:
    def test_grant_and_attach(self, sm):
        sm.apply({"op": "lease_grant", "lease_id": "L1", "ttl": 5.0, "now": 0.0})
        sm.apply({"op": "put", "key": "a", "value": 1, "lease": "L1"})
        assert "a" in sm.leases["L1"]["keys"]

    def test_put_with_unknown_lease_fails(self, sm):
        result = sm.apply({"op": "put", "key": "a", "value": 1, "lease": "nope"})
        assert not result["ok"]
        assert sm.get("a") is None

    def test_revoke_deletes_keys(self, sm):
        sm.apply({"op": "lease_grant", "lease_id": "L1", "ttl": 5.0, "now": 0.0})
        sm.apply({"op": "put", "key": "a", "value": 1, "lease": "L1"})
        result = sm.apply({"op": "lease_revoke", "lease_id": "L1"})
        assert result["deleted"] == 1
        assert sm.get("a") is None

    def test_expire_respects_keepalive(self, sm):
        sm.apply({"op": "lease_grant", "lease_id": "L1", "ttl": 5.0, "now": 0.0})
        sm.apply({"op": "lease_keepalive", "lease_id": "L1", "now": 4.0})
        result = sm.apply({"op": "lease_expire", "lease_id": "L1", "now": 6.0})
        assert not result["ok"]  # refreshed to expire at 9.0
        result = sm.apply({"op": "lease_expire", "lease_id": "L1", "now": 9.5})
        assert result["ok"]
        assert "L1" not in sm.leases

    def test_keepalive_unknown_lease(self, sm):
        result = sm.apply({"op": "lease_keepalive", "lease_id": "nope", "now": 0.0})
        assert not result["ok"]


class TestDeterminism:
    def test_replay_reaches_identical_state(self):
        commands = [
            {"op": "put", "key": "a", "value": 1},
            {"op": "put", "key": "b", "value": 2},
            {"op": "cas", "key": "a", "expected": 1, "value": 3},
            {"op": "delete", "key": "b"},
            {"op": "lease_grant", "lease_id": "L", "ttl": 2.0, "now": 0.0},
            {"op": "put", "key": "c", "value": 9, "lease": "L"},
            {"op": "lease_expire", "lease_id": "L", "now": 3.0},
        ]
        first, second = KvStateMachine(), KvStateMachine()
        for cmd in commands:
            first.apply(dict(cmd))
            second.apply(dict(cmd))
        assert first.data == second.data
        assert first.revision == second.revision


class TestWatchDispatch:
    def test_prefix_watch_sees_puts_and_deletes(self):
        kernel = Kernel(seed=0)
        hub = WatchHub(kernel)
        sm = KvStateMachine(watch_hub=hub)
        watch = hub.add("jobs/")
        sm.apply({"op": "put", "key": "jobs/1", "value": "x"})
        sm.apply({"op": "put", "key": "other", "value": "y"})
        sm.apply({"op": "delete", "key": "jobs/1"})
        events = []
        while len(watch.channel):
            events.append(watch.channel.get_nowait())
        assert [(e.type, e.key) for e in events] == [("put", "jobs/1"), ("delete", "jobs/1")]

    def test_cancel_stops_delivery(self):
        kernel = Kernel(seed=0)
        hub = WatchHub(kernel)
        sm = KvStateMachine(watch_hub=hub)
        watch = hub.add("")
        watch.cancel()
        sm.apply({"op": "put", "key": "a", "value": 1})
        assert watch.channel.closed

    def test_unknown_op_rejected(self, sm):
        with pytest.raises(Exception):
            sm.apply({"op": "frobnicate"})
