"""Raft log compaction and InstallSnapshot tests (Raft §7)."""

import pytest

from repro.grpcnet import LatencyModel, Network
from repro.raftkv import EtcdClient, EtcdCluster, KvStateMachine, RaftLog
from repro.raftkv.log import Compacted
from repro.sim import Kernel


def make_cluster(snapshot_threshold, size=3, seed=33):
    kernel = Kernel(seed=seed)
    network = Network(kernel, latency=LatencyModel(base=0.002, jitter=0.002))
    cluster = EtcdCluster(kernel, network, size=size,
                          snapshot_threshold=snapshot_threshold).start()
    client = EtcdClient(kernel, network, cluster)
    return kernel, network, cluster, client


def run(kernel, generator, limit=None):
    return kernel.run_until_complete(kernel.spawn(generator), limit=limit)


class TestLogCompaction:
    def test_compact_discards_prefix(self):
        log = RaftLog()
        for i in range(10):
            log.append(1, {"i": i})
        log.compact(6)
        assert log.offset == 6
        assert log.first_index == 7
        assert log.last_index == 10
        assert len(log) == 4
        assert log.entry_at(7).command == {"i": 6}

    def test_compacted_access_raises(self):
        log = RaftLog()
        for i in range(5):
            log.append(1, {"i": i})
        log.compact(3)
        with pytest.raises(Compacted):
            log.entry_at(2)
        with pytest.raises(Compacted):
            log.entries_from(2)
        assert log.term_at(3) == 1  # boundary term retained

    def test_matches_at_boundary(self):
        log = RaftLog()
        for _ in range(5):
            log.append(2, {})
        log.compact(4)
        assert log.matches(4, 2)
        assert not log.matches(4, 1)
        assert log.matches(5, 2)

    def test_compact_beyond_end_rejected(self):
        log = RaftLog()
        log.append(1, {})
        with pytest.raises(IndexError):
            log.compact(5)

    def test_splice_skips_snapshotted_entries(self):
        from repro.raftkv import LogEntry

        log = RaftLog()
        for i in range(6):
            log.append(1, {"i": i})
        log.compact(4)
        # A slow leader resends entries 3..6; 3-4 are under the snapshot.
        log.splice(2, tuple(LogEntry(1, {"i": i}) for i in range(2, 6)))
        assert log.last_index == 6
        assert log.entry_at(5).command == {"i": 4}

    def test_append_after_compaction_indexes_correctly(self):
        log = RaftLog()
        for i in range(5):
            log.append(1, {"i": i})
        log.compact(5)
        assert log.append(2, {"new": True}) == 6
        assert log.last_term == 2


class TestStateMachineSnapshots:
    def test_roundtrip_preserves_everything(self):
        sm = KvStateMachine()
        sm.apply({"op": "put", "key": "a", "value": 1, "client_id": "c", "seq": 1})
        sm.apply({"op": "lease_grant", "lease_id": "L", "ttl": 5.0, "now": 0.0})
        sm.apply({"op": "put", "key": "b", "value": 2, "lease": "L"})
        restored = KvStateMachine.from_snapshot(sm.to_snapshot())
        assert restored.data == sm.data
        assert restored.revision == sm.revision
        assert restored.sessions == sm.sessions
        assert restored.leases["L"]["keys"] == {"b"}

    def test_snapshot_is_deep_copy(self):
        sm = KvStateMachine()
        sm.apply({"op": "put", "key": "a", "value": [1, 2]})
        image = sm.to_snapshot()
        sm.apply({"op": "put", "key": "a", "value": [9]})
        assert image["data"]["a"] == [1, 2]


class TestClusterSnapshots:
    def test_leader_compacts_at_threshold(self):
        kernel, _network, cluster, client = make_cluster(snapshot_threshold=50)

        def writes():
            yield from cluster.wait_for_leader()
            for i in range(120):
                yield from client.put(f"k{i % 7}", i)

        run(kernel, writes(), limit=200)
        kernel.run(until=kernel.now + 2.0)
        leader = cluster.leader()
        assert leader.snapshot is not None
        assert leader.log.offset >= 50
        assert len(leader.log) < 120

    def test_lagging_follower_catches_up_via_snapshot(self):
        kernel, _network, cluster, client = make_cluster(snapshot_threshold=40)

        def scenario():
            leader = yield from cluster.wait_for_leader()
            victim = next(n for n in cluster.node_ids if n != leader.node_id)
            cluster.crash(victim)
            for i in range(150):  # way past the threshold
                yield from client.put(f"k{i % 5}", i)
            cluster.restart(victim)
            yield kernel.sleep(4.0)
            return victim

        victim = run(kernel, scenario(), limit=400)
        node = cluster.node(victim)
        assert node.state_machine.get("k4") == 149
        assert node.log.offset > 0  # caught up via InstallSnapshot
        assert cluster.logs_consistent()

    def test_reads_correct_after_snapshot_recovery(self):
        kernel, _network, cluster, client = make_cluster(snapshot_threshold=30)

        def scenario():
            yield from cluster.wait_for_leader()
            for i in range(100):
                yield from client.put(f"k{i % 3}", i)
            cluster.crash_leader()
            yield from cluster.wait_for_leader()
            values = []
            for key in ("k0", "k1", "k2"):
                values.append((yield from client.get(key)))
            return values

        values = run(kernel, scenario(), limit=400)
        assert values == [99, 97, 98]

    def test_restart_restores_from_snapshot_not_replay(self):
        kernel, _network, cluster, client = make_cluster(snapshot_threshold=30)

        def scenario():
            yield from cluster.wait_for_leader()
            for i in range(90):
                yield from client.put("counter", i)
            yield kernel.sleep(2.0)

        run(kernel, scenario(), limit=300)
        node = cluster.node(cluster.node_ids[0])
        assert node.snapshot is not None
        node.crash()
        kernel.run(until=kernel.now + 1.0)
        node.restart()
        kernel.run(until=kernel.now + 4.0)
        assert node.state_machine.get("counter") == 89
        # It resumed from the snapshot boundary, not from index 1.
        assert node.last_applied >= node.snapshot["index"]

    def test_session_dedup_survives_snapshot(self):
        # Exactly-once semantics depend on session state being included
        # in snapshots (Raft §8 discussion).
        kernel, _network, cluster, client = make_cluster(snapshot_threshold=20)

        def scenario():
            yield from cluster.wait_for_leader()
            for i in range(60):
                yield from client.put("k", i)
            leader = cluster.leader()
            follower = next(n for n in cluster.nodes.values() if not n.is_leader)
            return follower.state_machine.sessions.get(client.client_id)

        session = run(kernel, scenario(), limit=300)
        kernel.run(until=kernel.now + 2.0)
        assert session is not None or True  # follower may lag; check leader
        leader = cluster.leader()
        assert leader.state_machine.sessions[client.client_id][0] == 60
