"""Raft edge cases: stale leaders, vote rules, read safety, churn."""

import pytest

from repro.grpcnet import LatencyModel, Network
from repro.raftkv import (
    EtcdClient,
    EtcdCluster,
    NoLeader,
    NotLeader,
    RaftTimings,
    RequestVote,
)
from repro.sim import Kernel


def make_cluster(size=3, seed=21):
    kernel = Kernel(seed=seed)
    network = Network(kernel, latency=LatencyModel(base=0.002, jitter=0.002))
    cluster = EtcdCluster(kernel, network, size=size).start()
    return kernel, network, cluster


class TestVoteRules:
    def test_stale_term_vote_rejected(self):
        kernel, _network, cluster = make_cluster()
        kernel.run(until=2.0)
        node = cluster.leader()
        reply = node._on_request_vote(RequestVote(
            term=0, candidate_id="intruder", last_log_index=99, last_log_term=99,
        ))
        assert not reply.vote_granted
        assert reply.term == node.current_term

    def test_vote_denied_to_stale_log(self):
        kernel, network, cluster = make_cluster()
        client = EtcdClient(kernel, network, cluster)

        def write():
            yield from cluster.wait_for_leader()
            for i in range(5):
                yield from client.put(f"k{i}", i)

        kernel.run_until_complete(kernel.spawn(write()), limit=60)
        kernel.run(until=kernel.now + 1.0)
        follower = next(n for n in cluster.nodes.values() if not n.is_leader)
        reply = follower._on_request_vote(RequestVote(
            term=follower.current_term + 10, candidate_id="stale",
            last_log_index=0, last_log_term=0,
        ))
        assert not reply.vote_granted

    def test_single_vote_per_term(self):
        kernel, _network, cluster = make_cluster()
        kernel.run(until=2.0)
        follower = next(n for n in cluster.nodes.values() if not n.is_leader)
        term = follower.current_term + 1
        first = follower._on_request_vote(RequestVote(
            term=term, candidate_id="cand-a",
            last_log_index=follower.log.last_index + 5,
            last_log_term=follower.current_term + 1,
        ))
        second = follower._on_request_vote(RequestVote(
            term=term, candidate_id="cand-b",
            last_log_index=follower.log.last_index + 5,
            last_log_term=follower.current_term + 1,
        ))
        assert first.vote_granted
        assert not second.vote_granted


class TestStaleLeader:
    def test_deposed_leader_rejects_writes(self):
        kernel, network, cluster = make_cluster()
        kernel.run(until=2.0)
        old_leader = cluster.leader()
        others = [n for n in cluster.node_ids if n != old_leader.node_id]
        for other in others:
            network.partition(old_leader.node_id, other)
        kernel.run(until=6.0)  # majority side elects a new leader
        new_leader = cluster.leader()
        assert new_leader.node_id != old_leader.node_id
        network.heal_all()
        kernel.run(until=kernel.now + 2.0)
        # The old leader stepped down on seeing the higher term.
        assert not old_leader.is_leader
        assert old_leader.current_term >= new_leader.current_term - 1

    def test_read_from_deposed_leader_redirects(self):
        kernel, network, cluster = make_cluster()
        client = EtcdClient(kernel, network, cluster)

        def scenario():
            yield from cluster.wait_for_leader()
            yield from client.put("k", "v")
            old = cluster.leader()
            old.crash()
            yield from cluster.wait_for_leader()
            old.restart()
            yield kernel.sleep(2.0)
            # Client hinted at the old leader still gets the right answer.
            client._leader_hint = old.node_id
            value = yield from client.get("k")
            return value

        assert kernel.run_until_complete(kernel.spawn(scenario()), limit=120) == "v"


class TestChurn:
    def test_rolling_restarts_preserve_data(self):
        kernel, network, cluster = make_cluster()
        client = EtcdClient(kernel, network, cluster)

        def scenario():
            yield from cluster.wait_for_leader()
            for index, node_id in enumerate(cluster.node_ids):
                yield from client.put(f"round-{index}", index)
                cluster.crash(node_id)
                yield kernel.sleep(1.0)
                cluster.restart(node_id)
                yield kernel.sleep(2.0)
            values = []
            for index in range(len(cluster.node_ids)):
                values.append((yield from client.get(f"round-{index}")))
            return values

        values = kernel.run_until_complete(kernel.spawn(scenario()), limit=300)
        assert values == [0, 1, 2]
        assert cluster.logs_consistent()

    def test_client_exhausts_attempts_without_quorum(self):
        kernel, network, cluster = make_cluster()
        kernel.run(until=2.0)
        for node_id in cluster.node_ids[:2]:
            cluster.crash(node_id)
        client = EtcdClient(kernel, network, cluster, max_attempts=3,
                            retry_delay=0.05)

        def scenario():
            yield from client.put("k", "v")

        with pytest.raises(NoLeader):
            kernel.run_until_complete(kernel.spawn(scenario()), limit=120)


class TestTimings:
    def test_invalid_timings_rejected(self):
        with pytest.raises(ValueError):
            RaftTimings(election_min=0.3, election_max=0.2)
        with pytest.raises(ValueError):
            RaftTimings(heartbeat=0.5, election_min=0.3, election_max=0.6)

    def test_five_node_cluster_tolerates_two_failures(self):
        kernel, network, cluster = make_cluster(size=5)
        client = EtcdClient(kernel, network, cluster)

        def scenario():
            yield from cluster.wait_for_leader()
            yield from client.put("before", 1)
            cluster.crash(cluster.node_ids[0])
            cluster.crash(cluster.node_ids[1])
            yield from cluster.wait_for_leader()
            yield from client.put("after", 2)
            a = yield from client.get("before")
            b = yield from client.get("after")
            return a, b

        assert kernel.run_until_complete(kernel.spawn(scenario()), limit=120) == (1, 2)


class TestLossyNetwork:
    def test_raft_commits_despite_message_loss(self):
        # 5% message loss: elections and replication retry through it.
        kernel = Kernel(seed=55)
        network = Network(kernel, latency=LatencyModel(base=0.002, jitter=0.002),
                          loss_rate=0.05)
        cluster = EtcdCluster(kernel, network, size=3).start()
        client = EtcdClient(kernel, network, cluster)

        def scenario():
            yield from cluster.wait_for_leader(timeout=30)
            for i in range(30):
                yield from client.put(f"k{i % 6}", i)
            values = []
            for j in range(6):
                values.append((yield from client.get(f"k{j}")))
            return values

        values = kernel.run_until_complete(kernel.spawn(scenario()), limit=600)
        assert values == [24, 25, 26, 27, 28, 29]
        kernel.run(until=kernel.now + 3.0)
        assert cluster.logs_consistent()
