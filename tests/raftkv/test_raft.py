"""Integration tests for Raft consensus: elections, replication, crashes."""

import pytest

from repro.grpcnet import LatencyModel, Network
from repro.raftkv import EtcdClient, EtcdCluster, LEADER
from repro.sim import Kernel


def make_cluster(size=3, seed=7):
    kernel = Kernel(seed=seed)
    network = Network(kernel, latency=LatencyModel(base=0.002, jitter=0.002))
    cluster = EtcdCluster(kernel, network, size=size).start()
    return kernel, network, cluster


def run(kernel, generator, limit=None):
    return kernel.run_until_complete(kernel.spawn(generator), limit=limit)


class TestElections:
    def test_single_leader_elected(self):
        kernel, _network, cluster = make_cluster()
        kernel.run(until=2.0)
        leaders = [n for n in cluster.nodes.values() if n.role == LEADER]
        assert len(leaders) == 1

    def test_single_node_cluster_becomes_leader(self):
        kernel, _network, cluster = make_cluster(size=1)
        kernel.run(until=1.0)
        assert cluster.leader() is not None

    def test_new_leader_after_leader_crash(self):
        kernel, _network, cluster = make_cluster()
        kernel.run(until=2.0)
        old = cluster.crash_leader()
        assert old is not None
        kernel.run(until=4.0)
        new = cluster.leader()
        assert new is not None
        assert new.node_id != old.node_id

    def test_no_leader_without_majority(self):
        kernel, _network, cluster = make_cluster()
        kernel.run(until=2.0)
        ids = cluster.node_ids
        cluster.crash(ids[0])
        cluster.crash(ids[1])
        kernel.run(until=6.0)
        assert cluster.leader() is None

    def test_leader_restored_when_majority_returns(self):
        kernel, _network, cluster = make_cluster()
        kernel.run(until=2.0)
        ids = cluster.node_ids
        cluster.crash(ids[0])
        cluster.crash(ids[1])
        kernel.run(until=4.0)
        cluster.restart(ids[0])
        kernel.run(until=8.0)
        assert cluster.leader() is not None

    def test_terms_monotonic_across_elections(self):
        kernel, _network, cluster = make_cluster()
        kernel.run(until=2.0)
        term1 = cluster.leader().current_term
        cluster.crash_leader()
        kernel.run(until=5.0)
        assert cluster.leader().current_term > term1


class TestReplication:
    def test_put_then_get(self):
        kernel, network, cluster = make_cluster()
        client = EtcdClient(kernel, network, cluster)

        def scenario():
            yield from cluster.wait_for_leader()
            yield from client.put("greeting", "hello")
            value = yield from client.get("greeting")
            return value

        assert run(kernel, scenario()) == "hello"

    def test_writes_replicated_to_all_nodes(self):
        kernel, network, cluster = make_cluster()
        client = EtcdClient(kernel, network, cluster)

        def scenario():
            yield from cluster.wait_for_leader()
            for i in range(10):
                yield from client.put(f"k{i}", i)

        run(kernel, scenario())
        kernel.run(until=kernel.now + 1.0)  # let followers apply
        for node in cluster.nodes.values():
            assert node.state_machine.get("k5") == 5

    def test_cas_through_consensus(self):
        kernel, network, cluster = make_cluster()
        client = EtcdClient(kernel, network, cluster)

        def scenario():
            yield from cluster.wait_for_leader()
            yield from client.put("lock", "free")
            first = yield from client.cas("lock", "free", "held")
            second = yield from client.cas("lock", "free", "held")
            return first["ok"], second["ok"]

        assert run(kernel, scenario()) == (True, False)

    def test_follower_redirects_to_leader(self):
        kernel, network, cluster = make_cluster()
        client = EtcdClient(kernel, network, cluster)

        def scenario():
            leader = yield from cluster.wait_for_leader()
            follower = next(n for n in cluster.node_ids if n != leader.node_id)
            client._leader_hint = follower  # force first attempt at follower
            yield from client.put("via-follower", 1)
            value = yield from client.get("via-follower")
            return value

        assert run(kernel, scenario()) == 1

    def test_logs_consistent_after_workload(self):
        kernel, network, cluster = make_cluster()
        client = EtcdClient(kernel, network, cluster)

        def scenario():
            yield from cluster.wait_for_leader()
            for i in range(20):
                yield from client.put(f"key-{i % 5}", i)

        run(kernel, scenario())
        kernel.run(until=kernel.now + 1.0)
        assert cluster.logs_consistent()
        assert cluster.applied_states_agree()


class TestCrashRecovery:
    def test_data_survives_leader_crash(self):
        kernel, network, cluster = make_cluster()
        client = EtcdClient(kernel, network, cluster)

        def scenario():
            yield from cluster.wait_for_leader()
            yield from client.put("durable", "yes")
            cluster.crash_leader()
            yield from cluster.wait_for_leader()
            value = yield from client.get("durable")
            return value

        assert run(kernel, scenario()) == "yes"

    def test_writes_continue_after_leader_crash(self):
        kernel, network, cluster = make_cluster()
        client = EtcdClient(kernel, network, cluster)

        def scenario():
            yield from cluster.wait_for_leader()
            yield from client.put("a", 1)
            cluster.crash_leader()
            yield from cluster.wait_for_leader()
            yield from client.put("b", 2)
            a = yield from client.get("a")
            b = yield from client.get("b")
            return a, b

        assert run(kernel, scenario()) == (1, 2)

    def test_restarted_node_catches_up(self):
        kernel, network, cluster = make_cluster()
        client = EtcdClient(kernel, network, cluster)

        def scenario():
            leader = yield from cluster.wait_for_leader()
            victim = next(n for n in cluster.node_ids if n != leader.node_id)
            cluster.crash(victim)
            for i in range(5):
                yield from client.put(f"k{i}", i)
            cluster.restart(victim)
            yield self_kernel.sleep(2.0)
            return victim

        self_kernel = kernel
        victim = run(kernel, scenario())
        node = cluster.node(victim)
        assert node.state_machine.get("k4") == 4

    def test_session_dedup_across_retries(self):
        # A write retried across a leader crash must not apply twice.
        kernel, network, cluster = make_cluster()
        client = EtcdClient(kernel, network, cluster)

        def scenario():
            yield from cluster.wait_for_leader()
            yield from client.put("counter-seed", 0)
            # Crash the leader, then retry-loop a put; session dedup in
            # the state machine guarantees a single application.
            cluster.crash_leader()
            yield from client.put("after-crash", "written-once")
            yield from cluster.wait_for_leader()
            value = yield from client.get("after-crash")
            return value

        assert run(kernel, scenario()) == "written-once"


class TestPartitions:
    def test_minority_partitioned_leader_cannot_commit(self):
        kernel, network, cluster = make_cluster()
        kernel.run(until=2.0)
        leader = cluster.leader()
        others = [n for n in cluster.node_ids if n != leader.node_id]
        for other in others:
            network.partition(leader.node_id, other)
        kernel.run(until=6.0)
        new_leader = cluster.leader()
        # A new leader must have emerged on the majority side.
        assert new_leader is not None
        assert new_leader.node_id != leader.node_id

    def test_heal_reconciles_logs(self):
        kernel, network, cluster = make_cluster()
        client = EtcdClient(kernel, network, cluster)
        kernel.run(until=2.0)
        leader = cluster.leader()
        others = [n for n in cluster.node_ids if n != leader.node_id]
        for other in others:
            network.partition(leader.node_id, other)

        def scenario():
            yield from cluster.wait_for_leader()  # majority-side leader
            yield from client.put("post-partition", "v")

        run(kernel, scenario(), limit=30.0)
        network.heal_all()
        kernel.run(until=kernel.now + 3.0)
        assert cluster.logs_consistent()
        assert leader.state_machine.get("post-partition") == "v"


class TestWatches:
    def test_watch_sees_committed_puts(self):
        kernel, network, cluster = make_cluster()
        client = EtcdClient(kernel, network, cluster)

        def scenario():
            leader = yield from cluster.wait_for_leader()
            watch = client.watch("status/", node_id=leader.node_id)
            yield from client.put("status/learner-0", "RUNNING")
            event = yield watch.channel.get()
            return event.type, event.key, event.value

        assert run(kernel, scenario()) == ("put", "status/learner-0", "RUNNING")

    def test_watch_channel_closes_on_node_crash(self):
        kernel, network, cluster = make_cluster()
        client = EtcdClient(kernel, network, cluster)

        def scenario():
            leader = yield from cluster.wait_for_leader()
            watch = client.watch("x/", node_id=leader.node_id)
            leader.crash()
            yield kernel.sleep(0.1)
            return watch.channel.closed

        assert run(kernel, scenario()) is True


class TestLeasesEndToEnd:
    def test_lease_expiry_deletes_key(self):
        kernel, network, cluster = make_cluster()
        client = EtcdClient(kernel, network, cluster)

        def scenario():
            yield from cluster.wait_for_leader()
            yield from client.lease_grant("hb", ttl=1.0)
            yield from client.put("alive/worker", "yes", lease="hb")
            yield kernel.sleep(3.0)  # well past TTL + sweep interval
            value = yield from client.get("alive/worker")
            return value

        assert run(kernel, scenario()) is None

    def test_keepalive_preserves_key(self):
        kernel, network, cluster = make_cluster()
        client = EtcdClient(kernel, network, cluster)

        def scenario():
            yield from cluster.wait_for_leader()
            yield from client.lease_grant("hb", ttl=1.0)
            yield from client.put("alive/worker", "yes", lease="hb")
            for _ in range(6):
                yield kernel.sleep(0.5)
                yield from client.lease_keepalive("hb")
            value = yield from client.get("alive/worker")
            return value

        assert run(kernel, scenario()) == "yes"
