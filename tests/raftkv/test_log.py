"""Unit tests for the Raft log."""

import pytest

from repro.raftkv import LogEntry, RaftLog


@pytest.fixture
def log():
    return RaftLog()


class TestBasics:
    def test_empty_log(self, log):
        assert log.last_index == 0
        assert log.last_term == 0
        assert log.term_at(0) == 0
        assert not log.has_entry(1)

    def test_append_returns_index(self, log):
        assert log.append(1, {"op": "noop"}) == 1
        assert log.append(1, {"op": "noop"}) == 2
        assert log.last_index == 2
        assert log.last_term == 1

    def test_term_at(self, log):
        log.append(1, {"op": "noop"})
        log.append(3, {"op": "noop"})
        assert log.term_at(1) == 1
        assert log.term_at(2) == 3

    def test_term_at_out_of_range(self, log):
        with pytest.raises(IndexError):
            log.term_at(1)

    def test_entries_from(self, log):
        for i in range(5):
            log.append(1, {"i": i})
        chunk = log.entries_from(3)
        assert [e.command["i"] for e in chunk] == [2, 3, 4]
        assert [e.command["i"] for e in log.entries_from(3, limit=2)] == [2, 3]

    def test_entries_from_invalid(self, log):
        with pytest.raises(IndexError):
            log.entries_from(0)


class TestMatching:
    def test_sentinel_always_matches(self, log):
        assert log.matches(0, 0)

    def test_match_same_term(self, log):
        log.append(2, {"op": "noop"})
        assert log.matches(1, 2)
        assert not log.matches(1, 3)
        assert not log.matches(2, 2)


class TestSplice:
    def test_splice_appends(self, log):
        log.splice(0, [LogEntry(1, {"a": 1}), LogEntry(1, {"a": 2})])
        assert log.last_index == 2

    def test_splice_idempotent_on_duplicates(self, log):
        entries = [LogEntry(1, {"a": 1}), LogEntry(1, {"a": 2})]
        log.splice(0, entries)
        log.splice(0, entries)
        assert log.last_index == 2

    def test_splice_truncates_conflicts(self, log):
        log.splice(0, [LogEntry(1, {"a": 1}), LogEntry(1, {"a": 2}), LogEntry(1, {"a": 3})])
        log.splice(1, [LogEntry(2, {"b": 1})])
        assert log.last_index == 2
        assert log.term_at(2) == 2
        assert log.entry_at(2).command == {"b": 1}

    def test_splice_does_not_truncate_on_stale_duplicate(self, log):
        # A delayed AppendEntries carrying an old prefix must not roll
        # back entries it does not know about.
        log.splice(0, [LogEntry(1, {"a": 1}), LogEntry(1, {"a": 2})])
        log.splice(0, [LogEntry(1, {"a": 1})])
        assert log.last_index == 2


class TestUpToDate:
    def test_higher_term_wins(self, log):
        log.append(2, {"op": "noop"})
        assert log.is_up_to_date(other_last_index=1, other_last_term=3)
        assert not log.is_up_to_date(other_last_index=5, other_last_term=1)

    def test_same_term_longer_wins(self, log):
        log.append(2, {"op": "noop"})
        log.append(2, {"op": "noop"})
        assert log.is_up_to_date(other_last_index=2, other_last_term=2)
        assert log.is_up_to_date(other_last_index=3, other_last_term=2)
        assert not log.is_up_to_date(other_last_index=1, other_last_term=2)
