"""Read-lease (check-quorum) reads, the ``stale_reads`` seeded bug,
and duplicate-apply accounting for retried client mutations."""

import pytest

from repro.grpcnet import LatencyModel, Network
from repro.raftkv import EtcdClient, EtcdCluster, NotLeader
from repro.sim import Kernel, MetricsRegistry


def make_cluster(size=3, seed=7, metrics=None):
    kernel = Kernel(seed=seed)
    network = Network(kernel, latency=LatencyModel(base=0.002, jitter=0.002))
    cluster = EtcdCluster(kernel, network, size=size,
                          metrics=metrics).start()
    return kernel, network, cluster


def run(kernel, generator, limit=None):
    return kernel.run_until_complete(kernel.spawn(generator), limit=limit)


def isolate(network, cluster, node_id):
    for other in cluster.node_ids:
        if other != node_id:
            network.partition(node_id, other)


def elect_and_write(kernel, network, cluster, key="/k", value="v1"):
    client = EtcdClient(kernel, network, cluster)

    def scenario():
        yield from cluster.wait_for_leader()
        yield from client.put(key, value)

    run(kernel, scenario())
    return cluster.leader()


class TestReadLease:
    def test_stable_leader_serves_reads(self):
        kernel, network, cluster = make_cluster()
        leader = elect_and_write(kernel, network, cluster)
        assert leader._read_lease_valid()
        assert leader._on_read({"key": "/k"})["value"] == "v1"

    def test_single_node_cluster_always_holds_the_lease(self):
        kernel, network, cluster = make_cluster(size=1)
        leader = elect_and_write(kernel, network, cluster)
        assert leader._read_lease_valid()

    def test_isolated_leader_loses_the_lease(self):
        kernel, network, cluster = make_cluster()
        leader = elect_and_write(kernel, network, cluster)
        isolate(network, cluster, leader.node_id)
        # Once election_min passes with no peer acks, the lease is
        # gone: the old leader must step out of the read path even
        # though it still believes it leads.
        kernel.run(until=kernel.now + 2 * cluster.timings.election_min)
        assert not leader._read_lease_valid()
        with pytest.raises(NotLeader) as excinfo:
            leader._on_read({"key": "/k"})
        # No hint: the deposed leader genuinely does not know who leads.
        assert excinfo.value.leader_hint is None
        with pytest.raises(NotLeader):
            leader._on_range({"prefix": "/"})

    def test_deposed_leader_would_serve_stale_value_without_lease(self):
        kernel, network, cluster = make_cluster()
        leader = elect_and_write(kernel, network, cluster)
        isolate(network, cluster, leader.node_id)
        client = EtcdClient(kernel, network, cluster, client_id="writer")

        def newer_write():
            # The majority side elects a replacement and commits v2
            # while the old leader still holds v1.
            deadline = kernel.now + 10.0
            while kernel.now < deadline:
                new = cluster.leader()
                if new is not None and new.node_id != leader.node_id \
                        and new.current_term > leader.current_term:
                    break
                yield kernel.sleep(0.05)
            yield from client.put("/k", "v2")

        run(kernel, newer_write())
        kernel.run(until=kernel.now + 2 * cluster.timings.election_min)
        assert leader.is_leader  # still *believes* it leads
        assert leader.state_machine.get("/k") == "v1"  # stale state
        # Lease on: the stale copy is unreachable through the read path.
        with pytest.raises(NotLeader):
            leader._on_read({"key": "/k"})
        # Seeded bug on: the same read happily returns the stale value.
        leader.stale_reads = True
        assert leader._on_read({"key": "/k"})["value"] == "v1"

    def test_lease_recovers_after_heal(self):
        kernel, network, cluster = make_cluster()
        leader = elect_and_write(kernel, network, cluster)
        isolate(network, cluster, leader.node_id)
        kernel.run(until=kernel.now + 2 * cluster.timings.election_min)
        assert not leader._read_lease_valid()
        for other in cluster.node_ids:
            if other != leader.node_id:
                network.heal(leader.node_id, other)
        kernel.run(until=kernel.now + 2.0)
        current = cluster.leader()
        assert current is not None
        assert current._read_lease_valid()
        assert current._on_read({"key": "/k"})["value"] == "v1"


class TestDuplicateApplies:
    def test_replayed_mutation_is_deduplicated_and_counted(self):
        metrics = MetricsRegistry()
        kernel, network, cluster = make_cluster(metrics=metrics)
        client = EtcdClient(kernel, network, cluster, client_id="c1")

        def scenario():
            leader = yield from cluster.wait_for_leader()
            first = yield from client.put("/k", "v1")
            # Replay the exact command a retrying client would resend
            # after losing the response: same (client_id, seq) tag.
            replay = {"op": "put", "key": "/k", "value": "v1",
                      "client_id": "c1", "seq": client._seq}
            second = yield network.call(
                leader.node_id, "propose", replay, deadline=2.0,
                caller="c1")
            return leader, first, second

        leader, first, second = run(kernel, scenario())
        # The session table swallowed the duplicate and replayed the
        # cached result instead of mutating the store twice.
        assert second == first
        assert leader.state_machine.duplicate_applies == 1
        child = metrics.counter(
            "raft_duplicate_applies_total", ("node",)
        ).labels(node=leader.node_id)
        assert child.value == 1.0

    def test_fresh_mutations_are_not_counted(self):
        metrics = MetricsRegistry()
        kernel, network, cluster = make_cluster(metrics=metrics)
        client = EtcdClient(kernel, network, cluster, client_id="c1")

        def scenario():
            yield from cluster.wait_for_leader()
            yield from client.put("/k", "v1")
            yield from client.put("/k", "v2")

        run(kernel, scenario())
        assert all(node.state_machine.duplicate_applies == 0
                   for node in cluster.nodes.values())

    def test_ops_carry_distinct_op_ids_across_clients(self):
        kernel, network, cluster = make_cluster()
        from repro.audit import HistoryRecorder
        history = HistoryRecorder(kernel)
        a = EtcdClient(kernel, network, cluster, client_id="a",
                       history=history)
        b = EtcdClient(kernel, network, cluster, client_id="b",
                       history=history)

        def scenario():
            yield from cluster.wait_for_leader()
            yield from a.put("/k", "v1")
            yield from b.put("/k", "v2")
            yield from a.get("/k")

        run(kernel, scenario())
        ops = history.ops_for_key("/k")
        assert [(o.client, o.op_id) for o in ops] == \
            [("a", 1), ("b", 1), ("a", 2)]
        assert all(o.status == "ok" and o.attempts >= 1 for o in ops)
