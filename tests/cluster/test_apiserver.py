"""Unit tests for the API server, image registry and kubectl extras."""

import pytest

from repro.cluster import (
    ConflictError,
    ContainerSpec,
    ImageRegistry,
    NotFoundError,
    Pod,
    PodSpec,
    RESTART_ALWAYS,
    RESTART_NEVER,
)
from repro.cluster.apiserver import ApiServer
from repro.sim import Kernel


def make_pod(name, labels=None):
    spec = PodSpec(containers=[ContainerSpec("c", "img")],
                   restart_policy=RESTART_NEVER)
    return Pod(name, spec, labels=labels)


@pytest.fixture
def kernel():
    return Kernel(seed=0)


@pytest.fixture
def api(kernel):
    return ApiServer(kernel)


class TestCrud:
    def test_create_get(self, api):
        pod = api.create(make_pod("p"))
        assert api.get("Pod", "p") is pod
        assert pod.metadata.creation_time == 0.0
        assert pod.metadata.resource_version == 1

    def test_duplicate_create_conflicts(self, api):
        api.create(make_pod("p"))
        with pytest.raises(ConflictError):
            api.create(make_pod("p"))

    def test_get_missing_raises(self, api):
        with pytest.raises(NotFoundError):
            api.get("Pod", "ghost")
        assert api.get_or_none("Pod", "ghost") is None

    def test_update_bumps_version(self, api):
        pod = api.create(make_pod("p"))
        api.update(pod)
        assert pod.metadata.resource_version == 2

    def test_update_deleted_raises(self, api):
        pod = api.create(make_pod("p"))
        api.delete("Pod", "p")
        with pytest.raises(NotFoundError):
            api.update(pod)

    def test_delete_missing_raises(self, api):
        with pytest.raises(NotFoundError):
            api.delete("Pod", "ghost")

    def test_list_by_selector(self, api):
        api.create(make_pod("a", labels={"role": "learner"}))
        api.create(make_pod("b", labels={"role": "helper"}))
        api.create(make_pod("c", labels={"role": "learner", "job": "j1"}))
        learners = api.list("Pod", selector={"role": "learner"})
        assert [p.metadata.name for p in learners] == ["a", "c"]
        assert api.list("Pod", selector={"role": "learner", "job": "j1"})[0] \
            .metadata.name == "c"

    def test_namespaces_isolate(self, api):
        spec = PodSpec(containers=[ContainerSpec("c", "img")],
                       restart_policy=RESTART_NEVER)
        api.create(Pod("same", spec, namespace="ns1"))
        api.create(Pod("same", spec, namespace="ns2"))
        assert len(api.list("Pod")) == 2
        assert len(api.list("Pod", namespace="ns1")) == 1

    def test_list_ordered_by_creation(self, kernel, api):
        api.create(make_pod("z"))

        def later():
            yield kernel.sleep(1.0)
            api.create(make_pod("a"))

        kernel.spawn(later())
        kernel.run()
        assert [p.metadata.name for p in api.list("Pod")] == ["z", "a"]


class TestWatches:
    def test_watch_sees_lifecycle(self, api):
        channel = api.watch("Pod")
        pod = api.create(make_pod("p"))
        api.update(pod)
        api.delete("Pod", "p")
        events = []
        while len(channel):
            events.append(channel.get_nowait()[0])
        assert events == ["ADDED", "MODIFIED", "DELETED"]

    def test_watch_scoped_to_kind(self, api):
        channel = api.watch("Job")
        api.create(make_pod("p"))
        assert len(channel) == 0

    def test_cancel_deregisters_and_closes(self, api):
        channel = api.watch("Pod")
        assert api.watcher_count("Pod") == 1
        channel.cancel()
        assert api.watcher_count("Pod") == 0
        assert channel.closed
        channel.cancel()  # idempotent
        api.create(make_pod("p"))  # no delivery to a cancelled watch
        assert len(channel) == 0

    def test_closed_watches_pruned_on_notify(self, api):
        # A watcher that died without cancelling (container crash) must
        # not leak its registration forever.
        kept = api.watch("Pod")
        leaked = api.watch("Pod")
        leaked.close()
        assert api.watcher_count("Pod") == 2
        api.create(make_pod("p"))
        assert api.watcher_count("Pod") == 1
        assert len(kept) == 1

    def test_unwatch_tolerates_foreign_channel(self, api):
        other = ApiServer(api.kernel)
        channel = other.watch("Pod")
        api.unwatch(channel)  # never registered here: no-op, but closed
        assert channel.closed


class TestEvents:
    def test_record_and_filter(self, api):
        api.record_event("Pod", "p", "Started", "on node-1")
        api.record_event("Job", "j", "Completed")
        assert len(api.events) == 2


class TestImageRegistry:
    def test_pull_time_scales_with_size(self, kernel):
        registry = ImageRegistry(kernel, pull_bandwidth_mb=100.0,
                                 cached_check_time=0.0)
        registry.register("small", 100).register("big", 1000)

        def pull(image):
            yield from registry.pull("node", image)
            return kernel.now

        t_small = kernel.run_until_complete(kernel.spawn(pull("small")))
        start = kernel.now
        t_big = kernel.run_until_complete(kernel.spawn(pull("big")))
        assert t_small == pytest.approx(1.0)
        assert t_big - start == pytest.approx(10.0)

    def test_cache_hit_is_fast(self, kernel):
        registry = ImageRegistry(kernel, pull_bandwidth_mb=100.0)
        registry.register("img", 1000)

        def pull_twice():
            yield from registry.pull("node", "img")
            first = kernel.now
            yield from registry.pull("node", "img")
            return first, kernel.now

        first, second = kernel.run_until_complete(kernel.spawn(pull_twice()))
        assert second - first < 0.1
        assert registry.pulls == 1 and registry.cache_hits == 1

    def test_caches_are_per_node(self, kernel):
        registry = ImageRegistry(kernel)
        registry.register("img", 100)
        registry.prewarm("node-a", "img")
        assert registry.is_cached("node-a", "img")
        assert not registry.is_cached("node-b", "img")

    def test_evict_forces_repull(self, kernel):
        registry = ImageRegistry(kernel)
        registry.register("img", 100)
        registry.prewarm("node", "img")
        registry.evict_node_cache("node")
        assert not registry.is_cached("node", "img")

    def test_unknown_image_rejected(self, kernel):
        registry = ImageRegistry(kernel)
        with pytest.raises(NotFoundError):
            registry.size_of("ghost")
        with pytest.raises(ValueError):
            registry.register("bad", 0)


class TestKubectlNodeOps:
    def test_cordon_blocks_scheduling(self, kernel, cluster):
        for name in ("node-0", "node-1", "node-2"):
            cluster.kubectl.cordon(name)
        pod = make_pod("p")
        cluster.api.create(pod)
        kernel.run(until=2.0)
        assert pod.node_name is None
        cluster.kubectl.uncordon("node-0")
        kernel.run(until=4.0)
        assert pod.node_name == "node-0"

    def test_drain_evicts_and_cordons(self, kernel, cluster):
        def forever(ctx):
            yield ctx.kernel.sleep(10_000)
            return 0

        spec = PodSpec(containers=[ContainerSpec("c", "tiny", workload=forever)],
                       restart_policy=RESTART_ALWAYS)
        pod = Pod("victim", spec)
        cluster.api.create(pod)
        kernel.run(until=3.0)
        node = pod.node_name
        cluster.kubectl.drain(node)
        kernel.run(until=8.0)
        assert not cluster.api.exists("Pod", "victim")
        assert cluster.api.get("Node", node, namespace="").unschedulable
