"""Pod scheduling and execution tests."""

import pytest

from repro.cluster import (
    ContainerSpec,
    KubernetesCluster,
    Pod,
    PodSpec,
    RESTART_ALWAYS,
    RESTART_NEVER,
    RESTART_ON_FAILURE,
)
from repro.cluster.resources.pod import FAILED, RUNNING, SUCCEEDED


def simple_workload(duration=1.0, exit_code=0, log=None):
    def workload(ctx):
        if log is not None:
            log.append((ctx.kernel.now, "started"))
        yield ctx.kernel.sleep(duration)
        return exit_code

    return workload


def make_pod(name, workload=None, restart_policy=RESTART_NEVER, gpus=0,
             image="tiny", **spec_kwargs):
    spec = PodSpec(
        containers=[ContainerSpec("main", image, workload=workload, gpus=gpus)],
        restart_policy=restart_policy,
        **spec_kwargs,
    )
    return Pod(name, spec)


class TestScheduling:
    def test_pod_gets_scheduled_and_runs(self, kernel, cluster):
        pod = make_pod("p1", simple_workload(1.0))
        cluster.api.create(pod)
        kernel.run(until=1.0)
        assert pod.node_name is not None
        assert pod.phase == RUNNING
        kernel.run(until=4.0)
        assert pod.phase == SUCCEEDED

    def test_gpu_request_respected(self, kernel, cluster):
        pods = [make_pod(f"g{i}", simple_workload(60.0), gpus=4) for i in range(4)]
        for pod in pods:
            cluster.api.create(pod)
        kernel.run(until=2.0)
        scheduled = [p for p in pods if p.node_name is not None]
        # 3 nodes x 4 GPUs: only three 4-GPU pods fit.
        assert len(scheduled) == 3
        unscheduled = [p for p in pods if p.node_name is None][0]
        assert unscheduled.phase == "Pending"

    def test_pending_pod_scheduled_when_capacity_frees(self, kernel, cluster):
        hogs = [make_pod(f"hog{i}", simple_workload(5.0), gpus=4) for i in range(3)]
        for pod in hogs:
            cluster.api.create(pod)
        waiter = make_pod("waiter", simple_workload(1.0), gpus=4)
        cluster.api.create(waiter)
        kernel.run(until=2.0)
        assert waiter.node_name is None
        kernel.run(until=20.0)
        assert waiter.phase == SUCCEEDED

    def test_gpu_type_constraint(self, kernel, nfs):
        cluster = KubernetesCluster(kernel, nfs)
        cluster.registry.register("tiny", 10)
        cluster.add_node("k80-node", gpus=4, gpu_type="k80")
        cluster.add_node("p100-node", gpus=4, gpu_type="p100")
        cluster.start()
        pod = make_pod("p", simple_workload(1.0), gpus=1, gpu_type="p100")
        cluster.api.create(pod)
        kernel.run(until=1.0)
        assert pod.node_name == "p100-node"

    def test_bin_packing_prefers_fuller_node(self, kernel, cluster):
        first = make_pod("first", simple_workload(60.0), gpus=2)
        cluster.api.create(first)
        kernel.run(until=1.0)
        second = make_pod("second", simple_workload(60.0), gpus=1)
        cluster.api.create(second)
        kernel.run(until=2.0)
        assert second.node_name == first.node_name

    def test_node_selector(self, kernel, nfs):
        cluster = KubernetesCluster(kernel, nfs)
        cluster.registry.register("tiny", 10)
        cluster.add_node("plain", gpus=0)
        cluster.add_node("special", gpus=0, labels={"tier": "gold"})
        cluster.start()
        pod = make_pod("p", simple_workload(0.5), node_selector={"tier": "gold"})
        cluster.api.create(pod)
        kernel.run(until=1.0)
        assert pod.node_name == "special"

    def test_unschedulable_records_event(self, kernel, cluster):
        pod = make_pod("huge", simple_workload(1.0), gpus=99)
        cluster.api.create(pod)
        kernel.run(until=1.0)
        reasons = [e.reason for e in cluster.kubectl.get_events(name="huge")]
        assert "FailedScheduling" in reasons

    def test_resources_released_after_completion(self, kernel, cluster):
        pod = make_pod("p", simple_workload(1.0), gpus=2)
        cluster.api.create(pod)
        kernel.run(until=5.0)
        assert pod.phase == SUCCEEDED
        assert cluster.capacity_summary()["gpus_allocated"] == 0


class TestRestartPolicies:
    def test_never_policy_fails_pod(self, kernel, cluster):
        pod = make_pod("fail", simple_workload(0.5, exit_code=1), RESTART_NEVER)
        cluster.api.create(pod)
        kernel.run(until=3.0)
        assert pod.phase == FAILED
        assert pod.restart_count == 0

    def test_on_failure_restarts_until_success(self, kernel, cluster):
        attempts = []

        def flaky(ctx):
            attempts.append(ctx.kernel.now)
            yield ctx.kernel.sleep(0.2)
            return 1 if len(attempts) < 3 else 0

        pod = make_pod("flaky", flaky, RESTART_ON_FAILURE)
        cluster.api.create(pod)
        kernel.run(until=10.0)
        assert pod.phase == SUCCEEDED
        assert len(attempts) == 3
        assert pod.restart_count == 2

    def test_always_policy_keeps_restarting(self, kernel, cluster):
        runs = []

        def repeat(ctx):
            runs.append(ctx.kernel.now)
            yield ctx.kernel.sleep(0.3)
            return 0

        pod = make_pod("svc", repeat, RESTART_ALWAYS)
        cluster.api.create(pod)
        kernel.run(until=5.0)
        assert pod.phase == RUNNING
        assert len(runs) >= 3

    def test_exception_in_workload_is_exit_1(self, kernel, cluster):
        def broken(ctx):
            yield ctx.kernel.sleep(0.1)
            raise RuntimeError("user code bug")

        pod = make_pod("broken", broken, RESTART_NEVER)
        cluster.api.create(pod)
        kernel.run(until=3.0)
        assert pod.phase == FAILED
        assert pod.container_statuses["main"].exit_code == 1

    def test_crash_loop_backoff_grows(self, kernel, cluster):
        starts = []

        def crasher(ctx):
            starts.append(ctx.kernel.now)
            yield ctx.kernel.sleep(0.05)
            return 1

        pod = make_pod("crashloop", crasher, RESTART_ON_FAILURE)
        cluster.api.create(pod)
        kernel.run(until=12.0)
        gaps = [b - a for a, b in zip(starts, starts[1:])]
        assert len(gaps) >= 3
        assert gaps[-1] > gaps[0]  # exponential backoff


class TestPodDeletion:
    def test_graceful_delete_signals_stop(self, kernel, cluster):
        stopped = []

        def graceful(ctx):
            yield ctx.stop_event
            stopped.append(ctx.kernel.now)
            return 0

        pod = make_pod("svc", graceful, RESTART_ALWAYS)
        cluster.api.create(pod)
        kernel.run(until=2.0)
        cluster.kubectl.delete_pod("svc")
        kernel.run(until=5.0)
        assert stopped
        assert not cluster.api.exists("Pod", "svc")

    def test_force_delete_is_immediate(self, kernel, cluster):
        pod = make_pod("victim", simple_workload(100.0), RESTART_ALWAYS)
        cluster.api.create(pod)
        kernel.run(until=2.0)
        before = kernel.now
        cluster.kubectl.delete_pod("victim", force=True)
        assert not cluster.api.exists("Pod", "victim")
        assert kernel.now == before  # no grace period elapsed

    def test_deleted_pod_frees_resources(self, kernel, cluster):
        pod = make_pod("gpu-user", simple_workload(100.0), RESTART_ALWAYS, gpus=3)
        cluster.api.create(pod)
        kernel.run(until=2.0)
        assert cluster.capacity_summary()["gpus_allocated"] == 3
        cluster.kubectl.delete_pod("gpu-user", force=True)
        assert cluster.capacity_summary()["gpus_allocated"] == 0

    def test_deleted_pod_does_not_restart(self, kernel, cluster):
        runs = []

        def counting(ctx):
            runs.append(ctx.kernel.now)
            yield ctx.kernel.sleep(100.0)
            return 0

        pod = make_pod("once", counting, RESTART_ALWAYS)
        cluster.api.create(pod)
        kernel.run(until=2.0)
        assert len(runs) == 1
        cluster.kubectl.delete_pod("once", force=True)
        kernel.run(until=10.0)
        assert len(runs) == 1


class TestContainerCrash:
    def test_crash_container_restarts_in_place(self, kernel, cluster):
        runs = []

        def service(ctx):
            runs.append(ctx.kernel.now)
            yield ctx.kernel.sleep(1000.0)
            return 0

        pod = make_pod("svc", service, RESTART_ALWAYS)
        cluster.api.create(pod)
        kernel.run(until=2.0)
        assert len(runs) == 1
        cluster.kubectl.crash_container("svc", "main")
        kernel.run(until=6.0)
        assert len(runs) == 2
        assert pod.restart_count == 1
        assert pod.phase == RUNNING

    def test_killed_container_reports_137(self, kernel, cluster):
        pod = make_pod("victim", simple_workload(1000.0), RESTART_NEVER)
        cluster.api.create(pod)
        kernel.run(until=2.0)
        cluster.kubectl.crash_container("victim", "main")
        kernel.run(until=4.0)
        assert pod.container_statuses["main"].exit_code == 137
        assert pod.phase == FAILED


class TestImagePulls:
    def test_large_image_delays_start(self, kernel, cluster):
        fast = make_pod("fast", simple_workload(0.1), image="tiny")
        slow = make_pod("slow", simple_workload(0.1), image="framework/tensorflow:1.5")
        cluster.api.create(fast)
        cluster.api.create(slow)
        kernel.run(until=60.0)
        assert fast.start_time < slow.start_time

    def test_cached_image_starts_fast(self, kernel, cluster):
        first = make_pod("first", simple_workload(0.1), image="framework/tensorflow:1.5")
        cluster.api.create(first)
        kernel.run(until=60.0)
        node = first.node_name
        second = make_pod("second", simple_workload(0.1),
                          image="framework/tensorflow:1.5",
                          node_selector={})
        second.spec.node_selector = {}
        cluster.api.create(second)
        # Force same node via selector on name label is not available;
        # rely on bin-packing preferring the same (now fuller? equal) node —
        # instead just verify the registry reports a cache hit if reused.
        kernel.run(until=120.0)
        assert cluster.registry.pulls >= 1

    def test_logs_captured(self, kernel, cluster):
        def chatty(ctx):
            ctx.log("hello from container")
            yield ctx.kernel.sleep(0.1)
            return 0

        pod = make_pod("chatty", chatty)
        cluster.api.create(pod)
        kernel.run(until=3.0)
        lines = [line for _t, line in cluster.kubectl.logs("chatty")]
        assert "hello from container" in lines


class TestVolumes:
    def test_pod_waits_for_pvc_and_mounts(self, kernel, cluster, nfs):
        from repro.cluster import PersistentVolumeClaim

        seen = {}

        def writer(ctx):
            ctx.mounts["work"].write_file("/hello.txt", "hi")
            seen["files"] = ctx.mounts["work"].listdir("/")
            yield ctx.kernel.sleep(0.1)
            return 0

        cluster.api.create(PersistentVolumeClaim("job-claim"))
        spec = PodSpec(
            containers=[ContainerSpec("main", "tiny", workload=writer)],
            restart_policy=RESTART_NEVER,
            volumes={"work": "job-claim"},
        )
        cluster.api.create(Pod("vol-pod", spec))
        kernel.run(until=10.0)
        assert seen["files"] == ["hello.txt"]
        volume = nfs.volume("pv-default-job-claim")
        assert volume.read_file("/hello.txt") == "hi"

    def test_volume_shared_between_pods(self, kernel, cluster):
        from repro.cluster import PersistentVolumeClaim

        cluster.api.create(PersistentVolumeClaim("shared"))
        result = {}

        def writer(ctx):
            yield ctx.kernel.sleep(0.2)
            ctx.mounts["v"].write_file("/status", "PROCESSING")
            return 0

        def reader(ctx):
            while not ctx.mounts["v"].exists("/status"):
                yield ctx.kernel.sleep(0.1)
            result["status"] = ctx.mounts["v"].read_file("/status")
            return 0

        for name, workload in (("writer", writer), ("reader", reader)):
            spec = PodSpec(
                containers=[ContainerSpec("main", "tiny", workload=workload)],
                restart_policy=RESTART_NEVER,
                volumes={"v": "shared"},
            )
            cluster.api.create(Pod(name, spec))
        kernel.run(until=15.0)
        assert result["status"] == "PROCESSING"
