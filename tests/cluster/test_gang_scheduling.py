"""Gang scheduling tests: all-or-nothing placement of distributed jobs."""

from repro.cluster import ContainerSpec, Pod, PodSpec, RESTART_NEVER
from repro.cluster.errors import InvalidResource

import pytest


def gang_pod(name, gang, size, gpus=1):
    spec = PodSpec(
        containers=[ContainerSpec("c", "tiny", gpus=gpus)],
        restart_policy=RESTART_NEVER,
        gpu_type="k80",
        gang=gang,
        gang_size=size,
    )
    return Pod(name, spec)


def single_pod(name, gpus=1):
    spec = PodSpec(
        containers=[ContainerSpec("c", "tiny", gpus=gpus)],
        restart_policy=RESTART_NEVER,
        gpu_type="k80",
    )
    return Pod(name, spec)


class TestGangValidation:
    def test_gang_needs_size(self):
        with pytest.raises(InvalidResource):
            PodSpec(containers=[ContainerSpec("c", "i")], gang="g", gang_size=1)


class TestGangPlacement:
    def test_full_gang_placed_together(self, kernel, cluster):
        # 3 nodes x 4 GPUs; a gang of 6 one-GPU pods fits across nodes.
        for i in range(6):
            cluster.api.create(gang_pod(f"g-{i}", "job-a", 6))
        cluster.scheduler.schedule_once()
        pods = cluster.kubectl.get_pods()
        assert all(p.node_name is not None for p in pods)

    def test_oversized_gang_binds_nothing(self, kernel, cluster):
        # 13 GPUs needed, 12 available: no member may bind.
        for i in range(13):
            cluster.api.create(gang_pod(f"g-{i}", "job-a", 13))
        cluster.scheduler.schedule_once()
        pods = cluster.kubectl.get_pods()
        assert all(p.node_name is None for p in pods)
        assert cluster.capacity_summary()["gpus_allocated"] == 0

    def test_interleaved_gangs_do_not_deadlock(self, kernel, cluster):
        # Two gangs of 8 on 12 GPUs, members interleaved in creation
        # order. Without atomicity each would grab ~6 and deadlock;
        # with it, exactly one gang binds fully.
        for i in range(8):
            cluster.api.create(gang_pod(f"a-{i}", "job-a", 8))
            cluster.api.create(gang_pod(f"b-{i}", "job-b", 8))
        cluster.scheduler.schedule_once()
        bound_a = sum(1 for p in cluster.kubectl.get_pods()
                      if p.metadata.name.startswith("a-") and p.node_name)
        bound_b = sum(1 for p in cluster.kubectl.get_pods()
                      if p.metadata.name.startswith("b-") and p.node_name)
        assert sorted((bound_a, bound_b)) == [0, 8]

    def test_second_gang_binds_when_capacity_frees(self, kernel, cluster):
        def quick(ctx):
            yield ctx.kernel.sleep(2.0)
            return 0

        for i in range(8):
            spec = PodSpec(
                containers=[ContainerSpec("c", "tiny", workload=quick, gpus=1)],
                restart_policy=RESTART_NEVER, gpu_type="k80",
                gang="job-a", gang_size=8,
            )
            cluster.api.create(Pod(f"a-{i}", spec))
            cluster.api.create(gang_pod(f"b-{i}", "job-b", 8))
        kernel.run(until=30.0)
        bound_b = sum(1 for p in cluster.kubectl.get_pods()
                      if p.metadata.name.startswith("b-") and p.node_name)
        assert bound_b == 8

    def test_partial_gang_reschedules_individually(self, kernel, cluster):
        # A lone pending gang member (a crash replacement, the rest of
        # the gang running) binds without waiting for a full gang.
        lone = gang_pod("replacement-3", "job-a", 8)
        cluster.api.create(lone)
        cluster.scheduler.schedule_once()
        assert lone.node_name is not None

    def test_gang_failure_does_not_block_singles(self, kernel, cluster):
        for i in range(13):
            cluster.api.create(gang_pod(f"g-{i}", "big", 13))
        small = single_pod("small")
        cluster.api.create(small)
        cluster.scheduler.schedule_once()
        assert small.node_name is not None

    def test_gang_members_may_span_nodes(self, kernel, cluster):
        # 3 nodes x 4 GPUs: a gang of 3 four-GPU pods takes one node each.
        for i in range(3):
            cluster.api.create(gang_pod(f"g-{i}", "span", 3, gpus=4))
        cluster.scheduler.schedule_once()
        nodes = {p.node_name for p in cluster.kubectl.get_pods()}
        assert len(nodes) == 3
