"""Shared fixtures for Kubernetes-simulator tests."""

import pytest

from repro.cluster import KubernetesCluster
from repro.nfs import NfsServer
from repro.sim import Kernel


@pytest.fixture
def kernel():
    return Kernel(seed=11)


@pytest.fixture
def nfs(kernel):
    return NfsServer(kernel)


@pytest.fixture
def cluster(kernel, nfs):
    cluster = KubernetesCluster(kernel, nfs)
    cluster.registry.register("tiny", 10)
    cluster.registry.register("framework/tensorflow:1.5", 3000)
    for i in range(3):
        cluster.add_node(f"node-{i}", gpus=4, gpu_type="k80")
    cluster.start()
    return cluster
