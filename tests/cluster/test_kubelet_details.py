"""Kubelet details: multi-container pods, backoff cap, volume waits."""

import pytest

from repro.cluster import (
    ContainerSpec,
    PersistentVolumeClaim,
    Pod,
    PodSpec,
    RESTART_ALWAYS,
    RESTART_NEVER,
    RESTART_ON_FAILURE,
)


def sleeper(duration, exit_code=0):
    def workload(ctx):
        yield ctx.kernel.sleep(duration)
        return exit_code

    return workload


class TestMultiContainerPods:
    def test_pod_succeeds_when_all_containers_succeed(self, kernel, cluster):
        spec = PodSpec(
            containers=[
                ContainerSpec("fast", "tiny", workload=sleeper(0.5)),
                ContainerSpec("slow", "tiny", workload=sleeper(2.0)),
            ],
            restart_policy=RESTART_NEVER,
        )
        pod = Pod("multi", spec)
        cluster.api.create(pod)
        kernel.run(until=10.0)
        assert pod.phase == "Succeeded"
        assert pod.container_statuses["fast"].exit_code == 0
        assert pod.container_statuses["slow"].exit_code == 0

    def test_one_failing_container_fails_pod(self, kernel, cluster):
        spec = PodSpec(
            containers=[
                ContainerSpec("good", "tiny", workload=sleeper(0.5)),
                ContainerSpec("bad", "tiny", workload=sleeper(0.5, exit_code=3)),
            ],
            restart_policy=RESTART_NEVER,
        )
        pod = Pod("multi", spec)
        cluster.api.create(pod)
        kernel.run(until=10.0)
        assert pod.phase == "Failed"
        assert pod.container_statuses["bad"].exit_code == 3

    def test_on_failure_restarts_only_the_failing_container(self, kernel, cluster):
        attempts = {"good": 0, "flaky": 0}

        def good(ctx):
            attempts["good"] += 1
            yield ctx.kernel.sleep(0.5)
            return 0

        def flaky(ctx):
            attempts["flaky"] += 1
            yield ctx.kernel.sleep(0.2)
            return 1 if attempts["flaky"] < 3 else 0

        spec = PodSpec(
            containers=[
                ContainerSpec("good", "tiny", workload=good),
                ContainerSpec("flaky", "tiny", workload=flaky),
            ],
            restart_policy=RESTART_ON_FAILURE,
        )
        pod = Pod("multi", spec)
        cluster.api.create(pod)
        kernel.run(until=20.0)
        assert pod.phase == "Succeeded"
        assert attempts == {"good": 1, "flaky": 3}

    def test_duplicate_container_names_rejected(self):
        from repro.cluster import InvalidResource

        with pytest.raises(InvalidResource):
            PodSpec(containers=[ContainerSpec("x", "i"), ContainerSpec("x", "i")])


class TestBackoffCap:
    def test_backoff_caps_at_configured_max(self, kernel, nfs):
        from repro.cluster import KubernetesCluster, KubeletConfig

        cluster = KubernetesCluster(
            kernel, nfs,
            kubelet_config=KubeletConfig(restart_backoff_base=0.5,
                                         restart_backoff_max=2.0),
        )
        cluster.registry.register("tiny", 10)
        cluster.add_node("n0", gpus=0)
        cluster.start()
        starts = []

        def crasher(ctx):
            starts.append(ctx.kernel.now)
            yield ctx.kernel.sleep(0.05)
            return 1

        spec = PodSpec(containers=[ContainerSpec("c", "tiny", workload=crasher)],
                       restart_policy=RESTART_ON_FAILURE)
        cluster.api.create(Pod("loop", spec))
        kernel.run(until=30.0)
        gaps = [b - a for a, b in zip(starts, starts[1:])]
        assert len(gaps) >= 5
        # Gaps grow but never beyond max + run duration.
        assert max(gaps) <= 2.0 + 0.05 + 1e-6
        assert gaps[-1] == pytest.approx(2.05, abs=0.01)


class TestVolumeWaits:
    def test_pod_with_unbound_pvc_stays_pending_until_bound(self, kernel, cluster):
        # Create the pod first; the PVC arrives late.
        spec = PodSpec(
            containers=[ContainerSpec("c", "tiny", workload=sleeper(0.5))],
            restart_policy=RESTART_NEVER,
            volumes={"v": "late-claim"},
        )
        pod = Pod("waiter", spec)
        cluster.api.create(pod)
        kernel.run(until=3.0)
        assert pod.phase == "Pending"  # scheduled but not started

        cluster.api.create(PersistentVolumeClaim("late-claim"))
        kernel.run(until=10.0)
        assert pod.phase == "Succeeded"

    def test_deleting_pod_stuck_on_pvc_unblocks(self, kernel, cluster):
        spec = PodSpec(
            containers=[ContainerSpec("c", "tiny", workload=sleeper(0.5))],
            restart_policy=RESTART_NEVER,
            volumes={"v": "never-bound"},
        )
        pod = Pod("stuck", spec)
        cluster.api.create(pod)
        kernel.run(until=3.0)
        cluster.kubectl.delete_pod("stuck")
        kernel.run(until=10.0)
        assert not cluster.api.exists("Pod", "stuck")
        assert cluster.capacity_summary()["gpus_allocated"] == 0


class TestRestartCountsSurviveReporting:
    def test_pod_restart_count_aggregates_containers(self, kernel, cluster):
        calls = {"a": 0, "b": 0}

        def make(name):
            def workload(ctx):
                calls[name] += 1
                yield ctx.kernel.sleep(0.3)
                return 1 if calls[name] < 2 else 0

            return workload

        spec = PodSpec(
            containers=[
                ContainerSpec("a", "tiny", workload=make("a")),
                ContainerSpec("b", "tiny", workload=make("b")),
            ],
            restart_policy=RESTART_ON_FAILURE,
        )
        pod = Pod("counted", spec)
        cluster.api.create(pod)
        kernel.run(until=15.0)
        assert pod.phase == "Succeeded"
        assert pod.restart_count == 2


class TestBriefKubeletOutage:
    def test_containers_restart_locally_after_short_outage(self, kernel, cluster):
        # Kubelet dies and returns within the eviction timeout: the node
        # is never marked NotReady, and the containers restart in place
        # on the same node (a machine reboot faster than detection).
        runs = []

        def service(ctx):
            runs.append(ctx.kernel.now)
            yield ctx.kernel.sleep(1e6)
            return 0

        spec = PodSpec(containers=[ContainerSpec("c", "tiny", workload=service)],
                       restart_policy=RESTART_ALWAYS)
        pod = Pod("resident", spec)
        cluster.api.create(pod)
        kernel.run(until=3.0)
        node_name = pod.node_name
        kubelet = cluster.kubelet_for(node_name)
        kubelet.crash()
        kernel.run(until=4.0)  # under the 3s eviction timeout? restart now
        kubelet.restart()
        kernel.run(until=15.0)
        assert pod.node_name == node_name  # never rescheduled
        assert pod.phase == "Running"
        assert len(runs) == 2  # original start + post-outage restart
