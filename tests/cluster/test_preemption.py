"""Scheduler preemption tests."""

from repro.cluster import ContainerSpec, Pod, PodSpec, RESTART_NEVER


def gpu_pod(name, gpus=2, priority=0, duration=1e6):
    def workload(ctx):
        yield ctx.kernel.sleep(duration)
        return 0

    spec = PodSpec(
        containers=[ContainerSpec("c", "tiny", workload=workload, gpus=gpus)],
        restart_policy=RESTART_NEVER,
        gpu_type="k80",
        priority=priority,
    )
    return Pod(name, spec)


def fill_cluster(cluster, priority=0):
    # 3 nodes x 4 GPUs: six 2-GPU pods fill everything.
    pods = [gpu_pod(f"low-{i}", priority=priority) for i in range(6)]
    for pod in pods:
        cluster.api.create(pod)
    return pods


class TestPreemption:
    def test_high_priority_evicts_lowest(self, kernel, cluster):
        fill_cluster(cluster, priority=10)
        kernel.run(until=3.0)
        urgent = gpu_pod("urgent", gpus=2, priority=90)
        cluster.api.create(urgent)
        kernel.run(until=10.0)
        assert urgent.node_name is not None
        events = [e for e in cluster.api.events if e.reason == "Preempted"]
        assert len(events) == 1

    def test_equal_priority_never_preempts(self, kernel, cluster):
        fill_cluster(cluster, priority=50)
        kernel.run(until=3.0)
        peer = gpu_pod("peer", gpus=2, priority=50)
        cluster.api.create(peer)
        kernel.run(until=10.0)
        assert peer.node_name is None
        assert not [e for e in cluster.api.events if e.reason == "Preempted"]

    def test_zero_priority_never_triggers_preemption(self, kernel, cluster):
        fill_cluster(cluster, priority=0)
        kernel.run(until=3.0)
        newcomer = gpu_pod("newcomer", gpus=2, priority=0)
        cluster.api.create(newcomer)
        kernel.run(until=10.0)
        assert newcomer.node_name is None

    def test_minimum_victims_chosen(self, kernel, cluster):
        # One node holds a single 4-GPU pod; others hold two 2-GPU pods
        # each. A 4-GPU urgent pod should evict the single big pod, not
        # two small ones.
        big = gpu_pod("big", gpus=4, priority=10)
        cluster.api.create(big)
        kernel.run(until=2.0)
        smalls = [gpu_pod(f"small-{i}", gpus=2, priority=10) for i in range(4)]
        for pod in smalls:
            cluster.api.create(pod)
        kernel.run(until=4.0)
        urgent = gpu_pod("urgent", gpus=4, priority=90)
        cluster.api.create(urgent)
        kernel.run(until=12.0)
        assert urgent.node_name is not None
        preempted = {e.name for e in cluster.api.events if e.reason == "Preempted"}
        assert preempted == {"big"}

    def test_preemption_disabled_flag(self, kernel, cluster):
        cluster.scheduler.preemption = False
        fill_cluster(cluster, priority=10)
        kernel.run(until=3.0)
        urgent = gpu_pod("urgent", gpus=2, priority=90)
        cluster.api.create(urgent)
        kernel.run(until=10.0)
        assert urgent.node_name is None

    def test_non_gpu_pods_are_never_victims(self, kernel, cluster):
        fill_cluster(cluster, priority=10)

        def forever(ctx):
            yield ctx.kernel.sleep(1e6)
            return 0

        sidecar_spec = PodSpec(
            containers=[ContainerSpec("c", "tiny", workload=forever)],
            restart_policy=RESTART_NEVER,
            priority=1,
        )
        cluster.api.create(Pod("cpu-sidecar", sidecar_spec))
        kernel.run(until=3.0)
        urgent = gpu_pod("urgent", gpus=2, priority=90)
        cluster.api.create(urgent)
        kernel.run(until=10.0)
        preempted = {e.name for e in cluster.api.events if e.reason == "Preempted"}
        assert "cpu-sidecar" not in preempted

    def test_impossible_demand_preempts_nothing(self, kernel, cluster):
        fill_cluster(cluster, priority=10)
        kernel.run(until=3.0)
        impossible = gpu_pod("impossible", gpus=8, priority=90)  # > any node
        cluster.api.create(impossible)
        kernel.run(until=10.0)
        assert impossible.node_name is None
        assert not [e for e in cluster.api.events if e.reason == "Preempted"]
