"""Tests for Job/StatefulSet/Deployment/Node controllers."""

from repro.cluster import (
    ContainerSpec,
    Deployment,
    Job,
    NetworkPolicy,
    PodSpec,
    PodTemplate,
    RESTART_ALWAYS,
    RESTART_NEVER,
    StatefulSet,
)
from repro.cluster.resources.node import NOT_READY, READY


def template(workload_factory, restart_policy=RESTART_NEVER, labels=None):
    def spec_factory():
        return PodSpec(
            containers=[ContainerSpec("main", "tiny", workload=workload_factory())],
            restart_policy=restart_policy,
        )

    return PodTemplate(spec_factory, labels=labels)


class TestJobController:
    def test_job_runs_to_completion(self, kernel, cluster):
        def make_workload():
            def workload(ctx):
                yield ctx.kernel.sleep(1.0)
                return 0

            return workload

        job = Job("guardian-j1", template(make_workload))
        cluster.api.create(job)
        kernel.run(until=10.0)
        assert job.succeeded and not job.failed

    def test_job_retries_failed_pods(self, kernel, cluster):
        attempts = []

        def make_workload():
            def workload(ctx):
                attempts.append(ctx.kernel.now)
                yield ctx.kernel.sleep(0.3)
                return 1 if len(attempts) < 3 else 0

            return workload

        job = Job("retry-job", template(make_workload), backoff_limit=6)
        cluster.api.create(job)
        kernel.run(until=30.0)
        assert job.succeeded
        assert len(attempts) == 3

    def test_job_fails_after_backoff_limit(self, kernel, cluster):
        def make_workload():
            def workload(ctx):
                yield ctx.kernel.sleep(0.2)
                return 1

            return workload

        job = Job("hopeless", template(make_workload), backoff_limit=2)
        cluster.api.create(job)
        kernel.run(until=60.0)
        assert job.failed and not job.succeeded
        assert job.failures == 3  # initial + 2 retries

    def test_job_pod_replaced_after_kill(self, kernel, cluster):
        attempts = []

        def make_workload():
            def workload(ctx):
                attempts.append(ctx.kernel.now)
                yield ctx.kernel.sleep(3.0)
                return 0

            return workload

        job = Job("guardian", template(make_workload), backoff_limit=5)
        cluster.api.create(job)
        kernel.run(until=2.0)
        assert len(attempts) == 1
        pod_name = job.active_pod
        cluster.kubectl.delete_pod(pod_name, force=True)
        kernel.run(until=20.0)
        assert job.succeeded
        assert len(attempts) == 2


class TestStatefulSetController:
    def test_creates_ordinal_pods(self, kernel, cluster):
        def make_workload():
            def workload(ctx):
                yield ctx.kernel.sleep(100.0)
                return 0

            return workload

        sset = StatefulSet("learner", template(make_workload, RESTART_ALWAYS), replicas=3)
        cluster.api.create(sset)
        kernel.run(until=5.0)
        names = sorted(p.metadata.name for p in cluster.kubectl.get_pods())
        assert names == ["learner-0", "learner-1", "learner-2"]

    def test_ordinal_env_injected(self, kernel, cluster):
        seen = {}

        def make_workload():
            def workload(ctx):
                seen[ctx.env["ORDINAL"]] = True
                yield ctx.kernel.sleep(100.0)
                return 0

            return workload

        sset = StatefulSet("learner", template(make_workload, RESTART_ALWAYS), replicas=2)
        cluster.api.create(sset)
        kernel.run(until=5.0)
        assert set(seen) == {"0", "1"}

    def test_killed_pod_recreated_with_same_name(self, kernel, cluster):
        def make_workload():
            def workload(ctx):
                yield ctx.kernel.sleep(1000.0)
                return 0

            return workload

        sset = StatefulSet("learner", template(make_workload, RESTART_ALWAYS), replicas=2)
        cluster.api.create(sset)
        kernel.run(until=5.0)
        old_uid = cluster.kubectl.get_pod("learner-1").metadata.uid
        cluster.kubectl.delete_pod("learner-1", force=True)
        kernel.run(until=15.0)
        replacement = cluster.kubectl.get_pod("learner-1")
        assert replacement.metadata.uid != old_uid
        assert replacement.phase == "Running"

    def test_scale_down_removes_high_ordinals(self, kernel, cluster):
        def make_workload():
            def workload(ctx):
                yield ctx.kernel.sleep(1000.0)
                return 0

            return workload

        sset = StatefulSet("learner", template(make_workload, RESTART_ALWAYS), replicas=3)
        cluster.api.create(sset)
        kernel.run(until=5.0)
        sset.replicas = 1
        kernel.run(until=15.0)
        names = sorted(p.metadata.name for p in cluster.kubectl.get_pods())
        assert names == ["learner-0"]

    def test_teardown_removes_everything(self, kernel, cluster):
        def make_workload():
            def workload(ctx):
                yield ctx.kernel.sleep(1000.0)
                return 0

            return workload

        sset = StatefulSet("learner", template(make_workload, RESTART_ALWAYS), replicas=2)
        cluster.api.create(sset)
        kernel.run(until=5.0)
        sset.deletion_requested = True
        kernel.run(until=20.0)
        assert cluster.kubectl.get_pods() == []
        assert not cluster.api.exists("StatefulSet", "learner")


class TestDeploymentController:
    def test_maintains_replicas(self, kernel, cluster):
        def make_workload():
            def workload(ctx):
                yield ctx.kernel.sleep(1000.0)
                return 0

            return workload

        deployment = Deployment("api", template(make_workload, RESTART_ALWAYS), replicas=2)
        cluster.api.create(deployment)
        kernel.run(until=5.0)
        pods = cluster.kubectl.get_pods(selector={"deployment": "api"})
        assert len(pods) == 2

    def test_replaces_deleted_pod(self, kernel, cluster):
        def make_workload():
            def workload(ctx):
                yield ctx.kernel.sleep(1000.0)
                return 0

            return workload

        deployment = Deployment("api", template(make_workload, RESTART_ALWAYS), replicas=1)
        cluster.api.create(deployment)
        kernel.run(until=5.0)
        victim = cluster.kubectl.get_pods(selector={"deployment": "api"})[0]
        cluster.kubectl.delete_pod(victim.metadata.name, force=True)
        kernel.run(until=15.0)
        pods = cluster.kubectl.get_pods(selector={"deployment": "api"})
        assert len(pods) == 1
        assert pods[0].metadata.uid != victim.metadata.uid

    def test_scale_up_and_down(self, kernel, cluster):
        def make_workload():
            def workload(ctx):
                yield ctx.kernel.sleep(1000.0)
                return 0

            return workload

        deployment = Deployment("api", template(make_workload, RESTART_ALWAYS), replicas=1)
        cluster.api.create(deployment)
        kernel.run(until=5.0)
        deployment.replicas = 3
        kernel.run(until=10.0)
        assert len(cluster.kubectl.get_pods(selector={"deployment": "api"})) == 3
        deployment.replicas = 1
        kernel.run(until=20.0)
        live = [p for p in cluster.kubectl.get_pods(selector={"deployment": "api"})
                if not p.deletion_requested]
        assert len(live) == 1


class TestNodeFailure:
    def test_node_crash_detected_and_pods_evicted(self, kernel, cluster):
        def make_workload():
            def workload(ctx):
                yield ctx.kernel.sleep(1000.0)
                return 0

            return workload

        deployment = Deployment("api", template(make_workload, RESTART_ALWAYS), replicas=1)
        cluster.api.create(deployment)
        kernel.run(until=5.0)
        pod = cluster.kubectl.get_pods(selector={"deployment": "api"})[0]
        node_name = pod.node_name
        cluster.crash_node(node_name)
        kernel.run(until=20.0)
        node = cluster.api.get("Node", node_name, namespace="")
        assert node.condition == NOT_READY
        replacement = [p for p in cluster.kubectl.get_pods(selector={"deployment": "api"})
                       if not p.deletion_requested and not p.is_terminal()]
        assert len(replacement) == 1
        assert replacement[0].node_name != node_name

    def test_restarted_node_becomes_ready(self, kernel, cluster):
        cluster.crash_node("node-0")
        kernel.run(until=10.0)
        assert cluster.api.get("Node", "node-0", namespace="").condition == NOT_READY
        cluster.restart_node("node-0")
        kernel.run(until=15.0)
        assert cluster.api.get("Node", "node-0", namespace="").condition == READY

    def test_statefulset_pod_moves_off_dead_node(self, kernel, cluster):
        def make_workload():
            def workload(ctx):
                yield ctx.kernel.sleep(1000.0)
                return 0

            return workload

        sset = StatefulSet("learner", template(make_workload, RESTART_ALWAYS), replicas=1)
        cluster.api.create(sset)
        kernel.run(until=5.0)
        pod = cluster.kubectl.get_pod("learner-0")
        dead_node = pod.node_name
        cluster.crash_node(dead_node)
        kernel.run(until=30.0)
        replacement = cluster.kubectl.get_pod("learner-0")
        assert replacement.phase == "Running"
        assert replacement.node_name != dead_node

    def test_dead_node_resources_released(self, kernel, cluster):
        def make_workload():
            def workload(ctx):
                yield ctx.kernel.sleep(1000.0)
                return 0

            return workload

        sset = StatefulSet("learner", template(make_workload, RESTART_ALWAYS), replicas=1)
        # Give the pod GPUs via a custom template.
        def spec_factory():
            return PodSpec(
                containers=[ContainerSpec("main", "tiny",
                                          workload=make_workload()(), gpus=0)],
                restart_policy=RESTART_ALWAYS,
            )

        cluster.api.create(sset)
        kernel.run(until=5.0)
        pod = cluster.kubectl.get_pod("learner-0")
        node = cluster.api.get("Node", pod.node_name, namespace="")
        assert node.allocated_cpu > 0
        cluster.crash_node(pod.node_name)
        kernel.run(until=30.0)
        assert node.allocated_cpu == 0


class TestNetworkPolicy:
    def test_default_allow(self, cluster):
        assert cluster.network_allowed({"app": "a"}, {"app": "b"})

    def test_policy_blocks_unselected_sources(self, kernel, cluster):
        policy = NetworkPolicy(
            "learner-isolation",
            pod_selector={"role": "learner"},
            allow_from_selectors=[{"role": "learner"}, {"role": "helper"}],
        )
        cluster.api.create(policy)
        assert cluster.network_allowed({"role": "learner"}, {"role": "learner"})
        assert cluster.network_allowed({"role": "helper"}, {"role": "learner"})
        assert not cluster.network_allowed({"role": "other-tenant"}, {"role": "learner"})
        # Policy does not select helpers: still default-allow.
        assert cluster.network_allowed({"role": "other-tenant"}, {"role": "helper"})
