"""DeploymentController under replica crash and node drain.

The serving data plane (repro.serving) leans on the Deployment
abstraction for replica fleets, so the controller's failure behaviour
is load-bearing: a killed replica pod must be re-created promptly, a
drained node's replicas must land elsewhere, and neither path may
strand orphaned pods (non-terminal pods the controller no longer
counts toward the replica goal).
"""

from repro.cluster import (
    ContainerSpec,
    Deployment,
    PodSpec,
    PodTemplate,
    RESTART_ALWAYS,
)
from repro.cluster.resources.pod import RUNNING


def serving_like_deployment(name, replicas, labels=None):
    def spec_factory():
        def workload(ctx):
            yield ctx.stop_event
            return 0

        return PodSpec(
            containers=[ContainerSpec("replica", "tiny", workload=workload)],
            restart_policy=RESTART_ALWAYS,
        )

    return Deployment(name, PodTemplate(spec_factory, labels=labels),
                      replicas=replicas, labels=labels)


def fleet(cluster, selector):
    """(running, live, total) pods for the deployment's selector."""
    pods = cluster.api.list("Pod", selector=selector)
    running = [p for p in pods
               if p.phase == RUNNING and not p.deletion_requested]
    live = [p for p in pods
            if not p.is_terminal() and not p.deletion_requested]
    return running, live, pods


SELECTOR = {"app": "fleet"}


class TestDeploymentFailures:
    def test_replica_crash_recreated_promptly(self, kernel, cluster):
        deployment = serving_like_deployment("fleet", 3, labels=SELECTOR)
        cluster.api.create(deployment)
        kernel.run(until=30.0)
        running, live, _ = fleet(cluster, SELECTOR)
        assert len(running) == 3 and len(live) == 3

        victim = running[0].metadata.name
        killed_at = kernel.now
        cluster.kubectl.delete_pod(victim, force=True)

        # The controller replaces the pod; measure re-creation latency.
        recreated_at = None
        while kernel.now < killed_at + 60.0:
            kernel.run(until=kernel.now + 0.5)
            running, live, _ = fleet(cluster, SELECTOR)
            if len(running) == 3:
                recreated_at = kernel.now
                break
        assert recreated_at is not None, "replica never re-created"
        # Bound: reconcile tick + schedule + image already on node + boot.
        assert recreated_at - killed_at < 30.0
        running, live, pods = fleet(cluster, SELECTOR)
        assert len(live) == 3  # no extras beyond the replica goal
        assert victim not in {p.metadata.name for p in running}

    def test_node_drain_reschedules_replicas(self, kernel, cluster):
        deployment = serving_like_deployment("fleet", 3, labels=SELECTOR)
        cluster.api.create(deployment)
        kernel.run(until=30.0)
        running, _live, _ = fleet(cluster, SELECTOR)
        assert len(running) == 3

        # Drain the node hosting the most replicas.
        by_node = {}
        for pod in running:
            by_node.setdefault(pod.node_name, []).append(pod)
        drained = max(by_node, key=lambda n: len(by_node[n]))
        cluster.kubectl.drain(drained)
        kernel.run(until=kernel.now + 60.0)

        running, live, pods = fleet(cluster, SELECTOR)
        assert len(running) == 3 and len(live) == 3
        assert all(p.node_name != drained for p in running)
        # No orphans: everything not in the live fleet is terminal or
        # being deleted, and nothing still sits on the drained node.
        for pod in pods:
            if pod in live:
                continue
            assert pod.is_terminal() or pod.deletion_requested

    def test_node_crash_no_orphaned_pods(self, kernel, cluster):
        deployment = serving_like_deployment("fleet", 3, labels=SELECTOR)
        cluster.api.create(deployment)
        kernel.run(until=30.0)
        running, _live, _ = fleet(cluster, SELECTOR)
        dead_node = running[0].node_name
        cluster.crash_node(dead_node)

        # Node controller must notice the stale heartbeat, evict, and
        # the deployment controller must restore the fleet elsewhere.
        kernel.run(until=kernel.now + 300.0)
        running, live, pods = fleet(cluster, SELECTOR)
        assert len(running) == 3 and len(live) == 3
        assert all(p.node_name != dead_node for p in running)
        for pod in pods:
            if pod in live:
                continue
            assert pod.is_terminal() or pod.deletion_requested

    def test_scale_down_leaves_no_strays(self, kernel, cluster):
        deployment = serving_like_deployment("fleet", 4, labels=SELECTOR)
        cluster.api.create(deployment)
        kernel.run(until=30.0)
        running, _live, _ = fleet(cluster, SELECTOR)
        assert len(running) == 4

        deployment.replicas = 1
        cluster.api.update(deployment)
        kernel.run(until=kernel.now + 60.0)
        running, live, pods = fleet(cluster, SELECTOR)
        assert len(running) == 1 and len(live) == 1
        for pod in pods:
            if pod in live:
                continue
            assert pod.is_terminal() or pod.deletion_requested
