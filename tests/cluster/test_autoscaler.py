"""Cluster autoscaler tests: elasticity of the GPU pool."""

import pytest

from repro.cluster import (
    ClusterAutoscaler,
    ContainerSpec,
    KubernetesCluster,
    NodeTemplate,
    Pod,
    PodSpec,
    RESTART_NEVER,
)
from repro.nfs import NfsServer
from repro.sim import Kernel


@pytest.fixture
def kernel():
    return Kernel(seed=4)


@pytest.fixture
def elastic_cluster(kernel):
    cluster = KubernetesCluster(kernel, NfsServer(kernel))
    cluster.registry.register("tiny", 10)
    cluster.add_node("fixed-0", gpus=2, gpu_type="k80", labels={"pool": "gpu"})
    autoscaler = ClusterAutoscaler(
        kernel, cluster, template=NodeTemplate(gpus=2, gpu_type="k80"),
        min_nodes=0, max_nodes=3, boot_time=20.0, idle_timeout=60.0,
    )
    cluster.controllers.append(autoscaler)
    cluster.start()
    return cluster, autoscaler


def gpu_pod(name, gpus=2, duration=1e6):
    def workload(ctx):
        yield ctx.kernel.sleep(duration)
        return 0

    spec = PodSpec(
        containers=[ContainerSpec("c", "tiny", workload=workload, gpus=gpus)],
        restart_policy=RESTART_NEVER,
        gpu_type="k80",
    )
    return Pod(name, spec)


class TestScaleUp:
    def test_pending_pod_triggers_node_boot(self, kernel, elastic_cluster):
        cluster, autoscaler = elastic_cluster
        cluster.api.create(gpu_pod("hog"))  # fills the fixed node
        cluster.api.create(gpu_pod("queued"))
        kernel.run(until=60.0)
        assert autoscaler.scale_ups >= 1
        queued = cluster.api.get("Pod", "queued")
        assert queued.node_name is not None
        assert queued.node_name.startswith("autoscale-")

    def test_boot_time_is_paid(self, kernel, elastic_cluster):
        cluster, _autoscaler = elastic_cluster
        cluster.api.create(gpu_pod("hog"))
        cluster.api.create(gpu_pod("queued"))
        kernel.run(until=15.0)  # under the 20s boot time
        assert cluster.api.get("Pod", "queued").node_name is None
        kernel.run(until=60.0)
        assert cluster.api.get("Pod", "queued").node_name is not None

    def test_max_nodes_respected(self, kernel, elastic_cluster):
        cluster, autoscaler = elastic_cluster
        for i in range(10):  # demand far beyond max
            cluster.api.create(gpu_pod(f"p{i}"))
        kernel.run(until=200.0)
        pool = [n for n in cluster.api.list("Node", namespace="")
                if n.metadata.labels.get("autoscaled") == "true"]
        assert len(pool) == 3

    def test_no_scale_up_when_capacity_exists(self, kernel, elastic_cluster):
        cluster, autoscaler = elastic_cluster
        cluster.api.create(gpu_pod("fits"))
        kernel.run(until=60.0)
        assert autoscaler.scale_ups == 0

    def test_wrong_gpu_type_ignored(self, kernel, elastic_cluster):
        cluster, autoscaler = elastic_cluster

        def workload(ctx):
            yield ctx.kernel.sleep(1e6)
            return 0

        spec = PodSpec(
            containers=[ContainerSpec("c", "tiny", workload=workload, gpus=1)],
            restart_policy=RESTART_NEVER,
            gpu_type="p100-pcie",
        )
        cluster.api.create(Pod("wrong-type", spec))
        kernel.run(until=60.0)
        assert autoscaler.scale_ups == 0


class TestScaleDown:
    def test_idle_autoscaled_node_retired(self, kernel, elastic_cluster):
        cluster, autoscaler = elastic_cluster
        cluster.api.create(gpu_pod("hog", duration=1e6))
        cluster.api.create(gpu_pod("short", duration=30.0))
        kernel.run(until=300.0)  # short pod done; idle_timeout=60 elapses
        pool = [n for n in cluster.api.list("Node", namespace="")
                if n.metadata.labels.get("autoscaled") == "true"]
        assert pool == []
        assert autoscaler.scale_downs >= 1

    def test_fixed_nodes_never_retired(self, kernel, elastic_cluster):
        cluster, _autoscaler = elastic_cluster
        kernel.run(until=400.0)  # fixed node idle the whole time
        assert cluster.api.exists("Node", "fixed-0", namespace="")

    def test_busy_node_not_retired(self, kernel, elastic_cluster):
        cluster, autoscaler = elastic_cluster
        cluster.api.create(gpu_pod("hog", duration=1e6))
        cluster.api.create(gpu_pod("also-long", duration=1e6))
        kernel.run(until=400.0)
        pod = cluster.api.get("Pod", "also-long")
        node = cluster.api.get("Node", pod.node_name, namespace="")
        assert node is not None  # still present and running the pod
        assert pod.phase == "Running"

    def test_min_nodes_floor(self, kernel):
        cluster = KubernetesCluster(kernel, NfsServer(kernel))
        cluster.registry.register("tiny", 10)
        autoscaler = ClusterAutoscaler(
            kernel, cluster, template=NodeTemplate(gpus=2, gpu_type="k80"),
            min_nodes=1, max_nodes=3, boot_time=5.0, idle_timeout=30.0,
        )
        cluster.controllers.append(autoscaler)
        cluster.start()
        cluster.api.create(gpu_pod("burst", duration=10.0))
        kernel.run(until=500.0)
        pool = [n for n in cluster.api.list("Node", namespace="")
                if n.metadata.labels.get("autoscaled") == "true"]
        assert len(pool) == 1  # scaled to min, not zero


class TestValidation:
    def test_bad_bounds_rejected(self, kernel):
        cluster = KubernetesCluster(kernel, NfsServer(kernel))
        with pytest.raises(ValueError):
            ClusterAutoscaler(kernel, cluster, min_nodes=5, max_nodes=2)
