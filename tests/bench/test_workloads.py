"""Tests for the workload generator."""

import pytest

from repro.bench.workloads import DEFAULT_MIX, JobClass, WorkloadGenerator
from repro.core import TrainingManifest


class FakePlatform:
    def __init__(self, seed=0):
        from repro.sim import Kernel

        self.kernel = Kernel(seed=seed)


CREDS = {"k": "v"}


def generator(seed=0, mix=DEFAULT_MIX):
    return WorkloadGenerator(FakePlatform(seed), "in", "out", CREDS, mix=mix)


class TestWorkloadGenerator:
    def test_manifests_are_valid(self):
        for raw in generator().manifests(20):
            manifest = TrainingManifest.from_dict(raw)
            assert manifest.target_steps > 0

    def test_deterministic_per_seed(self):
        first = generator(seed=5).manifests(10)
        second = generator(seed=5).manifests(10)
        assert first == second
        different = generator(seed=6).manifests(10)
        assert different != first

    def test_names_unique(self):
        names = [m["name"] for m in generator().manifests(30)]
        assert len(set(names)) == 30

    def test_weights_respected(self):
        mix = (
            JobClass("common", 9.0, "resnet50", "tensorflow"),
            JobClass("rare", 1.0, "vgg16", "caffe"),
        )
        drawn = generator(mix=mix).manifests(200)
        common = sum(1 for m in drawn if m["name"].startswith("common"))
        assert 150 < common < 200

    def test_steps_within_class_bounds(self):
        mix = (JobClass("only", 1.0, "resnet50", "tensorflow",
                        min_steps=10, max_steps=20),)
        for manifest in generator(mix=mix).manifests(50):
            assert 10 <= manifest["target_steps"] <= 20

    def test_invalid_rate_rejected(self):
        gen = generator()

        with pytest.raises(ValueError):
            list(gen.poisson_arrivals(None, 1, rate=0))
