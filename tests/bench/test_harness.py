"""Unit tests for the benchmark harness itself."""

import pytest

from repro.bench import (
    atomic_deploy_rows,
    build_config,
    dgx1_config,
    etcd_vs_direct_rows,
    measure_bare_metal,
    measure_dgx1,
    render_table,
    scheduler_rows,
    shape_check,
)


class TestReporting:
    def test_render_table_aligns_columns(self):
        text = render_table("T", ["a", "long-column"], [
            {"a": 1, "long-column": 2.5},
            {"a": "xyz", "long-column": None},
        ])
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "long-column" in lines[2]
        assert "2.50" in text
        assert "-" in lines[-1]  # None renders as '-'

    def test_render_empty_table(self):
        text = render_table("Empty", ["col"], [])
        assert "col" in text

    def test_shape_check_verdicts(self):
        assert "[OK ]" in shape_check("x", 5.0, 3.0, 6.0)
        assert "[OUT]" in shape_check("x", 9.0, 3.0, 6.0)


class TestBaselineRunners:
    def test_bare_metal_throughput_deterministic(self):
        config = build_config("resnet50", "tensorflow", "k80", 1)
        first = measure_bare_metal(config, steps=50)
        second = measure_bare_metal(config, steps=50)
        assert first == second

    def test_dgx_beats_pcie(self):
        pcie = build_config("vgg16", "tensorflow", "p100-pcie", 2)
        dgx = dgx1_config("vgg16", "tensorflow", 2)
        assert measure_dgx1(dgx, steps=50) > measure_bare_metal(pcie, steps=50)

    def test_throughput_independent_of_step_count(self):
        # Steady-state measurement: 50 vs 200 steps agree closely.
        config = build_config("inceptionv3", "tensorflow", "k80", 1)
        short = measure_bare_metal(config, steps=50)
        long = measure_bare_metal(config, steps=200)
        assert abs(short - long) / long < 0.01


class TestAblationFunctions:
    def test_atomic_deploy_rows_match_analytic(self):
        rows = atomic_deploy_rows(crash_probability=0.5, trials=400,
                                  attempt_budgets=(1, 2, 4))
        for row in rows:
            assert abs(row["success rate"] - row["analytic"]) < 0.1
        rates = [row["success rate"] for row in rows]
        assert rates == sorted(rates)  # more attempts, more success

    def test_etcd_vs_direct_shape(self):
        rows = etcd_vs_direct_rows(updates=20, downtime=(10.0, 20.0))
        etcd_row, push_row = rows
        assert etcd_row["lost"] == 0
        assert 0 < push_row["lost"] < 20

    def test_scheduler_rows_shape(self):
        rows = scheduler_rows(nodes=4, gpus_per_node=4)
        binpack = next(r for r in rows if r["strategy"] == "binpack")
        spread = next(r for r in rows if r["strategy"] == "spread")
        assert binpack["4-GPU pods placed"] > spread["4-GPU pods placed"]


class TestReportBuilder:
    def test_collates_archived_tables(self, tmp_path):
        from repro.bench.report import build_report

        results = tmp_path / "bench_results"
        results.mkdir()
        (results / "fig2_overhead.txt").write_text("Fig2 table\nrow")
        (results / "custom_extra.txt").write_text("Extra table")
        out = build_report(results, tmp_path / "REPORT.md")
        text = out.read_text()
        assert "## Paper figures" in text
        assert "Fig2 table" in text
        assert "## Other results" in text
        assert "Extra table" in text
