"""Unit tests for the shared filesystem and NFS server."""

import pytest

from repro.nfs import (
    AlreadyExists,
    FsError,
    IsADirectory,
    NfsServer,
    NotFound,
    SharedFilesystem,
    VolumeNotFound,
)


@pytest.fixture
def fs():
    return SharedFilesystem()


class TestFiles:
    def test_write_read(self, fs):
        fs.write_file("/job/learner-0/exit-code", "0")
        assert fs.read_file("/job/learner-0/exit-code") == "0"

    def test_write_creates_parents(self, fs):
        fs.write_file("/a/b/c/d.txt", "x")
        assert fs.exists("/a/b/c/d.txt")
        assert fs.is_dir("/a/b/c")

    def test_overwrite(self, fs):
        fs.write_file("/f", "one")
        fs.write_file("/f", "two")
        assert fs.read_file("/f") == "two"

    def test_append(self, fs):
        fs.write_file("/log", "line1\n")
        fs.write_file("/log", "line2\n", append=True)
        assert fs.read_file("/log") == "line1\nline2\n"

    def test_append_line(self, fs):
        fs.append_line("/log", "a")
        fs.append_line("/log", "b\n")
        assert fs.read_file("/log") == "a\nb\n"

    def test_read_from_offset_tail(self, fs):
        fs.write_file("/log", "0123456789")
        assert fs.read_from("/log", 4) == "456789"
        assert fs.read_from("/log", 10) == ""

    def test_read_missing_raises(self, fs):
        with pytest.raises(NotFound):
            fs.read_file("/ghost")

    def test_size(self, fs):
        fs.write_file("/f", "abcd")
        assert fs.size("/f") == 4

    def test_read_directory_raises(self, fs):
        fs.mkdir("/d")
        with pytest.raises(IsADirectory):
            fs.read_file("/d")


class TestDirectories:
    def test_mkdir_and_list(self, fs):
        fs.mkdir("/jobs/j1/learner-0")
        fs.mkdir("/jobs/j1/learner-1")
        assert fs.listdir("/jobs/j1") == ["learner-0", "learner-1"]

    def test_listdir_root(self, fs):
        fs.mkdir("/a")
        fs.write_file("/b.txt", "")
        assert fs.listdir("/") == ["a", "b.txt"]

    def test_mkdir_no_parents_requires_parent(self, fs):
        with pytest.raises(NotFound):
            fs.mkdir("/x/y", parents=False)

    def test_mkdir_no_parents_exclusive(self, fs):
        fs.mkdir("/x")
        with pytest.raises(AlreadyExists):
            fs.mkdir("/x", parents=False)

    def test_delete_file(self, fs):
        fs.write_file("/f", "x")
        fs.delete("/f")
        assert not fs.exists("/f")

    def test_delete_nonempty_dir_requires_recursive(self, fs):
        fs.write_file("/d/f", "x")
        with pytest.raises(IsADirectory):
            fs.delete("/d")
        fs.delete("/d", recursive=True)
        assert not fs.exists("/d")

    def test_walk(self, fs):
        fs.write_file("/a/one.txt", "")
        fs.write_file("/a/b/two.txt", "")
        fs.write_file("/root.txt", "")
        walked = list(fs.walk("/"))
        assert walked[0] == ("/", ["a"], ["root.txt"])
        assert ("/a", ["b"], ["one.txt"]) in walked
        assert ("/a/b", [], ["two.txt"]) in walked


class TestNfsServer:
    def test_volume_lifecycle(self):
        server = NfsServer()
        server.create_volume("job-1")
        assert server.volume_names() == ["job-1"]
        server.delete_volume("job-1")
        with pytest.raises(VolumeNotFound):
            server.volume("job-1")

    def test_duplicate_volume_rejected_unless_exist_ok(self):
        server = NfsServer()
        server.create_volume("v")
        with pytest.raises(AlreadyExists):
            server.create_volume("v")
        assert server.create_volume("v", exist_ok=True) is server.volume("v")

    def test_mounts_share_state(self):
        server = NfsServer()
        server.create_volume("shared")
        learner_mount = server.mount("shared")
        helper_mount = server.mount("shared")
        learner_mount.write_file("/exit-code", "137")
        assert helper_mount.read_file("/exit-code") == "137"

    def test_volume_survives_unmount(self):
        # The core dependability property: container crash loses the
        # mount, never the data.
        server = NfsServer()
        server.create_volume("v")
        mount = server.mount("v")
        mount.write_file("/status", "PROCESSING")
        mount.unmount()
        with pytest.raises(FsError):
            mount.read_file("/status")
        fresh = server.mount("v")
        assert fresh.read_file("/status") == "PROCESSING"

    def test_server_outage_blocks_io(self):
        server = NfsServer()
        server.create_volume("v")
        mount = server.mount("v")
        mount.write_file("/f", "x")
        server.go_down()
        with pytest.raises(FsError):
            mount.read_file("/f")
        server.come_up()
        assert mount.read_file("/f") == "x"

    def test_clock_stamps_mtime(self):
        from repro.sim import Kernel

        kernel = Kernel()
        server = NfsServer(kernel)
        volume = server.create_volume("v")

        def writer():
            yield kernel.sleep(5.0)
            volume.write_file("/f", "x")

        kernel.spawn(writer())
        kernel.run()
        assert volume.mtime("/f") == 5.0


class TestMountSurface:
    def test_mount_proxies_full_api(self):
        server = NfsServer()
        server.create_volume("v")
        mount = server.mount("v")
        mount.mkdir("/dir")
        assert mount.is_dir("/dir")
        mount.write_file("/dir/f", "abc")
        assert mount.size("/dir/f") == 3
        assert mount.mtime("/dir/f") == 0.0
        assert mount.listdir("/dir") == ["f"]
        assert mount.read_from("/dir/f", 1) == "bc"
        walked = list(mount.walk("/"))
        assert walked[0][1] == ["dir"]
        mount.delete("/dir", recursive=True)
        assert not mount.exists("/dir")


class TestChangeSubscriptions:
    def test_callback_fires_on_write_and_delete(self, fs):
        seen = []
        fs.subscribe("/learners/", seen.append)
        fs.write_file("/learners/learner-0/status", "x")
        fs.write_file("/helper/load-data.status", "y")  # outside prefix
        fs.delete("/learners/learner-0/status")
        assert seen == ["/learners/learner-0/status",
                        "/learners/learner-0/status"]

    def test_cancel_stops_delivery(self, fs):
        seen = []
        subscription = fs.subscribe("/", seen.append)
        fs.write_file("/a", "1")
        subscription.cancel()
        fs.write_file("/b", "2")
        assert seen == ["/a"]
        assert not subscription.active

    def test_unmount_cancels_mount_subscriptions(self):
        server = NfsServer()
        server.create_volume("vol")
        mount = server.mount("vol")
        seen = []
        mount.subscribe("/", seen.append)
        other = server.mount("vol")
        other.write_file("/a", "1")
        mount.unmount()
        other.write_file("/b", "2")
        assert seen == ["/a"]

    def test_subscription_survives_other_mounts_death(self):
        # Registered on the volume: a crashed *other* container's mount
        # going away must not affect this subscriber.
        server = NfsServer()
        server.create_volume("vol")
        subscriber = server.mount("vol")
        writer = server.mount("vol")
        seen = []
        subscriber.subscribe("/", seen.append)
        writer.unmount()
        fresh = server.mount("vol")
        fresh.write_file("/a", "1")
        assert seen == ["/a"]
