#!/usr/bin/env python3
"""Hyper-parameter sweep: the workflow DLaaS exists to serve.

The paper's introduction: DLaaS lets developers "focus on training
neural nets and choosing hyper-parameters rather than focusing on
installation, configuration and fault tolerance." This example runs a
learning-rate sweep as parallel platform jobs, compares final losses,
and picks a winner — with the platform handling placement, status,
checkpointing and recovery underneath.

Run:  python examples/hyperparameter_sweep.py
"""

from repro import DlaasPlatform
from repro.core import PlatformConfig

CREDENTIALS = {"access_key": "AK", "secret": "SK"}

LEARNING_RATES = [0.002, 0.01, 0.05, 0.2, 0.8]


def main():
    platform = DlaasPlatform(
        seed=31,
        config=PlatformConfig(gpu_nodes=3, gpus_per_node=2, gpu_type="k80"),
    ).start()
    platform.seed_training_data("sweep-data", CREDENTIALS, size_mb=200)
    platform.ensure_results_bucket("sweep-results", CREDENTIALS)
    client = platform.client("sweep-team")

    def sweep():
        job_ids = {}
        for lr in LEARNING_RATES:
            manifest = {
                "name": f"resnet50-lr{lr}",
                "framework": "tensorflow",
                "model": "resnet50",
                "learners": 1,
                "gpus_per_learner": 1,
                "gpu_type": "k80",
                "target_steps": 400,
                "checkpoint_interval": 120.0,
                "dataset_size_mb": 200,
                "learning_rate": lr,
                "data": {"bucket": "sweep-data", "credentials": CREDENTIALS},
                "results": {"bucket": "sweep-results", "credentials": CREDENTIALS},
            }
            job_ids[lr] = yield from client.submit(manifest)
        results = {}
        for lr, job_id in job_ids.items():
            yield from client.wait_for_status(job_id, timeout=50_000)
            yield platform.kernel.sleep(5.0)  # metrics land right after
            doc = yield from client.status(job_id)
            results[lr] = doc
        return results

    results = platform.run_process(sweep(), limit=500_000)

    print(f"{'learning rate':>14} {'status':>10} {'final loss':>11} "
          f"{'img/s':>8} {'gpu-sec':>8}")
    for lr in LEARNING_RATES:
        doc = results[lr]
        metrics = doc["metrics"] or {}
        print(f"{lr:>14} {doc['status']:>10} "
              f"{metrics.get('final_loss', float('nan')):>11.4f} "
              f"{metrics.get('images_per_sec', 0):>8.1f} "
              f"{metrics.get('gpu_seconds', 0):>8.0f}")

    best_lr = min(
        (lr for lr in LEARNING_RATES if results[lr]["metrics"]),
        key=lambda lr: results[lr]["metrics"]["final_loss"],
    )
    print(f"\nwinner: lr={best_lr} "
          f"(final loss {results[best_lr]['metrics']['final_loss']:.4f})")
    print("note the shape: too-small rates converge slowly, the mid-range")
    print("wins, and the largest rate diverges — all five jobs shared the")
    print("cluster, queued as capacity allowed, and were individually")
    print("checkpointed and crash-recoverable.")


if __name__ == "__main__":
    main()
