#!/usr/bin/env python3
"""Distributed training: Horovod learners as a StatefulSet.

Shows the multi-learner path the paper motivates (§II, §III.e): N
learners with stable identities synchronizing gradients, scheduled onto
GPU nodes by the bin-packing scheduler, with per-learner statuses
visible through the API while the job runs. Also prints the measured
scaling curve so the 1GbE inter-node penalty is visible.

Run:  python examples/distributed_training.py
"""

from repro import DlaasPlatform
from repro.core import PlatformConfig

CREDENTIALS = {"access_key": "AK", "secret": "SK"}


def run_job(platform, client, learners, steps=150):
    manifest = {
        "name": f"resnet50-x{learners}",
        "framework": "horovod",
        "model": "resnet50",
        "learners": learners,
        "gpus_per_learner": 1,
        "gpu_type": "p100-pcie",
        "target_steps": steps,
        "checkpoint_interval": 120.0,
        "dataset_size_mb": 800,
        "data": {"bucket": "train", "credentials": CREDENTIALS},
        "results": {"bucket": "out", "credentials": CREDENTIALS},
    }

    def scenario():
        job_id = yield from client.submit(manifest)
        # Peek at per-learner statuses mid-flight.
        yield from client.wait_for_status(job_id, statuses={"PROCESSING"},
                                          timeout=2000)
        doc = yield from client.status(job_id)
        mid_flight = dict(doc["learners"])
        final = yield from client.wait_for_status(job_id, timeout=20_000)
        return job_id, mid_flight, final

    return platform.run_process(scenario(), limit=100_000)


def processing_seconds(doc):
    history = {h["status"]: h["time"] for h in doc["status_history"]}
    return history["STORING"] - history["PROCESSING"]


def main():
    platform = DlaasPlatform(
        seed=7,
        config=PlatformConfig(gpu_nodes=4, gpus_per_node=2, gpu_type="p100-pcie"),
    ).start()
    platform.seed_training_data("train", CREDENTIALS, size_mb=800)
    platform.ensure_results_bucket("out", CREDENTIALS)
    client = platform.client("dist-team")

    steps = 150
    batch_per_gpu = 64  # resnet50 default in the performance model
    print(f"{'learners':>9} {'status':>10} {'train time':>11} "
          f"{'images/sec':>11} {'scaling':>8}")
    baseline_ips = None
    last_mid_flight = None
    for learners in (1, 2, 4):
        job_id, mid_flight, final = run_job(platform, client, learners, steps)
        seconds = processing_seconds(final)
        images = steps * batch_per_gpu * learners
        ips = images / seconds
        if baseline_ips is None:
            baseline_ips = ips
        print(f"{learners:>9} {final['status']:>10} {seconds:>10.1f}s "
              f"{ips:>11.1f} {ips / baseline_ips:>7.2f}x")
        last_mid_flight = mid_flight

    print("\nper-learner statuses observed mid-training (4-learner job):")
    for name, report in sorted((last_mid_flight or {}).items()):
        print(f"  {name}: {report['status']} (step {report['step']})")

    print("\nAggregate throughput barely scales: every step ships ~100MB of")
    print("ResNet-50 gradients across the 1GbE fabric between learners —")
    print("exactly the data-center network pressure the paper's §II describes")
    print("(and why DLaaS clusters want Infiniband/NVLink for distributed jobs).")


if __name__ == "__main__":
    main()
