#!/usr/bin/env python3
"""Chaos day: crash every component while a job trains.

Reproduces the paper's dependability narrative (§IV): each component —
API, LCM, Guardian, helper, learner, an ETCD member, a MongoDB member,
even a whole node — fails independently while one training job runs,
and the job still completes with a sane status history. Prints a
recovery timeline built from trace events, the same measurement Fig. 4
reports.

Run:  python examples/chaos_day.py
"""

from repro import ComponentCrasher, DlaasPlatform
from repro.core import PlatformConfig

CREDENTIALS = {"access_key": "AK", "secret": "SK"}


def main():
    platform = DlaasPlatform(
        seed=13,
        config=PlatformConfig(gpu_nodes=3, gpus_per_node=2, gpu_type="k80"),
    ).start()
    platform.seed_training_data("train", CREDENTIALS, size_mb=300)
    platform.ensure_results_bucket("out", CREDENTIALS)
    client = platform.client("chaos-team")
    crasher = ComponentCrasher(platform)

    manifest = {
        "name": "survivor",
        "framework": "tensorflow",
        "model": "inceptionv3",
        "learners": 1,
        "gpus_per_learner": 1,
        "gpu_type": "k80",
        "target_steps": 900,
        "checkpoint_interval": 30.0,
        "dataset_size_mb": 300,
        "data": {"bucket": "train", "credentials": CREDENTIALS},
        "results": {"bucket": "out", "credentials": CREDENTIALS},
    }

    def submit():
        job_id = yield from client.submit(manifest)
        yield from client.wait_for_status(job_id, statuses={"PROCESSING"},
                                          timeout=2000)
        return job_id

    job_id = platform.run_process(submit(), limit=10_000)
    print(f"{job_id} is PROCESSING; beginning the chaos schedule\n")

    timeline = []

    def crash(label, fn, *args, settle=25.0):
        when, target = fn(*args)
        platform.run_for(settle)
        timeline.append((when, label, target))
        print(f"t={when:8.1f}s  crashed {label:<22} ({target})")

    crash("API pod", crasher.crash_api)
    crash("LCM pod", crasher.crash_lcm)
    crash("Guardian pod", crasher.crash_guardian, job_id)
    crash("helper pod", crasher.crash_helper, job_id)
    crash("controller container", crasher.crash_controller_container, job_id)
    crash("learner pod", crasher.crash_learner, job_id)
    crash("ETCD leader", lambda: (platform.kernel.now,
                                  platform.etcd.crash_leader().node_id))
    crash("MongoDB primary", lambda: (platform.kernel.now,
                                      platform.mongo.primary().crash().member_id))

    def finish():
        return (yield from client.wait_for_status(job_id, timeout=30_000))

    doc = platform.run_process(finish(), limit=200_000)

    print(f"\n=== {job_id}: {doc['status']} despite 8 injected failures ===")
    print("status history:")
    for entry in doc["status_history"]:
        print(f"  {entry['time']:9.1f}s  {entry['status']}")

    print("\nrecovery timeline (crash -> component-ready):")
    component_for = {
        "API pod": ("api", {}),
        "LCM pod": ("lcm", {}),
        "Guardian pod": ("guardian", {"job": job_id}),
        "helper pod": ("controller", {"job": job_id}),
        "controller container": ("controller", {"job": job_id}),
        "learner pod": ("learner-0", {"job": job_id}),
    }
    for when, label, _target in timeline:
        if label not in component_for:
            continue
        component, match = component_for[label]
        recovery = crasher.recovery_time(component, when, **match)
        shown = f"{recovery:6.1f}s" if recovery is not None else "   n/a"
        print(f"  {label:<22} {shown}")

    resumed = platform.tracer.query(component="learner-0", kind="component-ready",
                                    job=job_id)
    print(f"\nlearner incarnations: {len(resumed)}; resume points: "
          f"{[r.fields['resumed_step'] for r in resumed]}")
    print("(non-zero resume points = work recovered from checkpoints, §III.g-h)")

    from repro.core import job_timeline, render_timeline

    print("\nabridged job timeline:")
    print(render_timeline(job_timeline(platform, job_id, status_doc=doc),
                          limit=24))


if __name__ == "__main__":
    main()
