#!/usr/bin/env python3
"""Multi-tenant cluster day: mixed workloads, queueing, isolation, metering.

Three tenants share one GPU cluster (the paper's core economic
motivation, §I): jobs with different frameworks, models and GPU shapes
contend for capacity, the scheduler bin-packs them, late arrivals queue
until GPUs free up, tenants cannot see each other's jobs, and metering
accounts per-tenant usage.

Run:  python examples/multi_tenant_cluster.py
"""

from repro import DlaasPlatform
from repro.core import PlatformConfig

CREDENTIALS = {"access_key": "AK", "secret": "SK"}

WORKLOADS = {
    "vision-team": [
        ("vgg16", "caffe", 1, 2, 120),
        ("resnet50", "tensorflow", 1, 2, 150),
    ],
    "speech-team": [
        ("inceptionv3", "tensorflow", 1, 1, 150),
        ("resnet50", "horovod", 2, 1, 100),
    ],
    "research-lab": [
        ("alexnet", "pytorch", 1, 1, 200),
        ("googlenet", "tensorflow", 1, 4, 80),
    ],
}


def main():
    platform = DlaasPlatform(
        seed=99,
        config=PlatformConfig(gpu_nodes=3, gpus_per_node=4, gpu_type="k80"),
    ).start()
    platform.seed_training_data("shared-datasets", CREDENTIALS, size_mb=400)
    platform.ensure_results_bucket("shared-results", CREDENTIALS)

    clients = {tenant: platform.client(tenant) for tenant in WORKLOADS}
    monitor = platform.monitor(interval=5.0)

    def submit_all():
        submitted = []  # (tenant, job_id)
        for tenant, jobs in WORKLOADS.items():
            client = clients[tenant]
            for model, framework, learners, gpus, steps in jobs:
                manifest = {
                    "name": f"{model}-{framework}",
                    "framework": framework,
                    "model": model,
                    "learners": learners,
                    "gpus_per_learner": gpus,
                    "gpu_type": "k80",
                    "target_steps": steps,
                    "checkpoint_interval": 60.0,
                    "dataset_size_mb": 400,
                    "data": {"bucket": "shared-datasets",
                             "credentials": CREDENTIALS},
                    "results": {"bucket": "shared-results",
                                "credentials": CREDENTIALS},
                }
                job_id = yield from client.submit(manifest)
                submitted.append((tenant, job_id))
        return submitted

    submitted = platform.run_process(submit_all(), limit=5_000)
    total_gpus = platform.k8s.capacity_summary()["gpus_total"]
    requested = sum(
        learners * gpus
        for jobs in WORKLOADS.values()
        for _m, _f, learners, gpus, _s in jobs
    )
    print(f"submitted {len(submitted)} jobs requesting {requested} GPUs "
          f"on a {total_gpus}-GPU cluster\n")

    platform.run_for(30.0)
    peak = platform.k8s.capacity_summary()
    print(f"t={platform.kernel.now:.0f}s: {peak['gpus_allocated']}/"
          f"{peak['gpus_total']} GPUs allocated (rest of demand queued)\n")

    def drain():
        results = []
        for tenant, job_id in submitted:
            doc = yield from clients[tenant].wait_for_status(job_id, timeout=30_000)
            results.append((tenant, job_id, doc))
        return results

    results = platform.run_process(drain(), limit=200_000)

    print(f"{'tenant':<14} {'job':<10} {'name':<22} {'status':<10} {'makespan':>9}")
    for tenant, job_id, doc in results:
        makespan = doc["completed_at"] - doc["created_at"]
        print(f"{tenant:<14} {job_id:<10} {doc['name']:<22} "
              f"{doc['status']:<10} {makespan:>8.0f}s")

    print("\ntenant isolation: each tenant sees only its own jobs")
    for tenant, client in clients.items():
        def listing(client=client):
            return (yield from client.list_jobs())

        jobs = platform.run_process(listing(), limit=600)
        print(f"  {tenant:<14} sees {len(jobs)} job(s)")

    print("\nmetering:")
    for tenant, client in clients.items():
        def usage(client=client):
            return (yield from client.usage())

        report = platform.run_process(usage(), limit=600)
        print(f"  {tenant:<14} jobs={report['jobs_submitted']} "
              f"gpu_seconds={report.get('gpu_seconds', 0):9.0f} "
              f"api_calls={report['api_calls_total']}")

    monitor.stop()
    print()
    print(monitor.report())


if __name__ == "__main__":
    main()
