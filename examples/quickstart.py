#!/usr/bin/env python3
"""Quickstart: boot the platform, train one model, read the results.

Walks Figure 1 of the paper end to end: the client submits a manifest
to the API (stored durably in MongoDB before the ack), the LCM creates
a Guardian, the Guardian deploys the helper pod and learner, statuses
flow NFS -> controller -> ETCD -> Guardian -> MongoDB, and results land
in the object store.

Run:  python examples/quickstart.py
"""

from repro import DlaasPlatform
from repro.core import PlatformConfig

CREDENTIALS = {"access_key": "AKIA-EXAMPLE", "secret": "s3cr3t"}


def main():
    print("=== booting DLaaS (simulated) ===")
    platform = DlaasPlatform(
        seed=2018,
        config=PlatformConfig(gpu_nodes=2, gpus_per_node=4, gpu_type="k80"),
    ).start()
    print(f"control plane ready at t={platform.kernel.now:.1f}s "
          f"(api={list(platform.api_balancer.endpoints)})")

    # Stage training data the way a user would: a bucket in the cloud
    # object store, reachable with the credentials in the manifest.
    platform.seed_training_data("imagenet-subset", CREDENTIALS, size_mb=500)
    platform.ensure_results_bucket("team-results", CREDENTIALS)

    client = platform.client(tenant="quickstart-team")
    manifest = {
        "name": "resnet50-demo",
        "framework": "tensorflow",
        "model": "resnet50",
        "learners": 1,
        "gpus_per_learner": 1,
        "gpu_type": "k80",
        "target_steps": 400,
        "checkpoint_interval": 60.0,
        "dataset_size_mb": 500,
        "data": {"bucket": "imagenet-subset", "credentials": CREDENTIALS},
        "results": {"bucket": "team-results", "credentials": CREDENTIALS},
    }

    def scenario():
        job_id = yield from client.submit(manifest)
        print(f"submitted {job_id}")
        doc = yield from client.wait_for_status(job_id, timeout=10_000)
        return job_id, doc

    job_id, doc = platform.run_process(scenario(), limit=50_000)

    print(f"\n=== {job_id}: {doc['status']} ===")
    print("status history (simulated seconds):")
    for entry in doc["status_history"]:
        print(f"  {entry['time']:9.1f}s  {entry['status']}")

    def tail():
        return (yield from client.logs(job_id, tail=5))

    print("\nlast log lines:")
    for line in platform.run_process(tail(), limit=600):
        print(f"  {line}")

    keys = platform.object_store.list_objects("team-results", CREDENTIALS,
                                              prefix=job_id)
    print(f"\nartifacts in object store ({len(keys)}):")
    for key in keys:
        print(f"  {key}")

    def usage():
        return (yield from client.usage())

    report = platform.run_process(usage(), limit=600)
    print(f"\nmetering: {report['jobs_submitted']} job(s), "
          f"{report['api_calls_total']} API calls")


if __name__ == "__main__":
    main()
